"""Exhaustive walk of the paper's Figure 2: MESI + turn-off extension.

Every edge of the diagram — processor, snoop, turn-off, grant — is checked
against the transition tables, including the defer rule for transients and
the protocol-error cases.
"""

import pytest

from repro.coherence.events import (
    A_DEFER,
    A_FLUSH,
    A_GATE,
    A_INV_UPPER,
    A_NONE,
    A_WRITEBACK,
    BUS_RD,
    BUS_RDX,
    BUS_UPGR,
)
from repro.coherence.mesi import MESIProtocol, ProtocolError
from repro.coherence.states import E, I, M, OFF, S, TC, TD


@pytest.fixture
def proto():
    return MESIProtocol()


class TestProcessorEdges:
    """PrRd/- and PrWr edges of Figure 2."""

    @pytest.mark.parametrize("state", [S, E, M])
    def test_read_hit_keeps_state(self, proto, state):
        nxt, actions = proto.read_hit(state)
        assert nxt == state
        assert actions == A_NONE

    def test_read_hit_invalid_is_error(self, proto):
        with pytest.raises(ProtocolError):
            proto.read_hit(I)

    def test_write_hit_e_to_m_silent(self, proto):
        nxt, actions, txn = proto.write_hit(E)
        assert nxt == M and txn is None

    def test_write_hit_s_needs_upgrade(self, proto):
        nxt, actions, txn = proto.write_hit(S)
        assert nxt == M and txn == BUS_UPGR

    def test_write_hit_m_stays(self, proto):
        nxt, actions, txn = proto.write_hit(M)
        assert nxt == M and txn is None

    def test_miss_txns(self, proto):
        assert proto.miss_txn(is_write=False) == BUS_RD
        assert proto.miss_txn(is_write=True) == BUS_RDX

    def test_fill_states(self, proto):
        assert proto.fill_state(is_write=False, others_have_copy=False) == E
        assert proto.fill_state(is_write=False, others_have_copy=True) == S
        assert proto.fill_state(is_write=True, others_have_copy=True) == M


class TestSnoopEdges:
    """BusRd/BusRdX/BusUpgr observed remotely."""

    def test_m_busrd_flushes_and_demotes(self, proto):
        nxt, actions = proto.snoop(M, BUS_RD)
        assert nxt == S
        assert actions & A_FLUSH and actions & A_WRITEBACK

    def test_m_busrdx_flushes_and_dies(self, proto):
        nxt, actions = proto.snoop(M, BUS_RDX)
        assert nxt == I and actions & A_FLUSH

    def test_e_busrd_demotes_silently(self, proto):
        assert proto.snoop(E, BUS_RD) == (S, A_NONE)

    def test_e_busrdx_dies(self, proto):
        assert proto.snoop(E, BUS_RDX) == (I, A_NONE)

    def test_s_busrd_keeps(self, proto):
        assert proto.snoop(S, BUS_RD) == (S, A_NONE)

    def test_s_busrdx_dies(self, proto):
        assert proto.snoop(S, BUS_RDX) == (I, A_NONE)

    def test_s_upgrade_dies(self, proto):
        assert proto.snoop(S, BUS_UPGR) == (I, A_NONE)

    @pytest.mark.parametrize("state", [I, OFF])
    @pytest.mark.parametrize("txn", [BUS_RD, BUS_RDX, BUS_UPGR])
    def test_invalid_ignores_snoops(self, proto, state, txn):
        assert proto.snoop(state, txn) == (state, A_NONE)

    @pytest.mark.parametrize("state", [E, M])
    def test_upgrade_against_exclusive_owner_is_error(self, proto, state):
        with pytest.raises(ProtocolError):
            proto.snoop(state, BUS_UPGR)


class TestSnoopDuringTransients:
    """Lines parked in TC/TD still participate in coherence."""

    def test_td_busrd_supplies_dirty_data(self, proto):
        nxt, actions = proto.snoop(TD, BUS_RD)
        assert nxt == S and actions & A_FLUSH

    def test_td_busrdx_aborts_gating(self, proto):
        nxt, actions = proto.snoop(TD, BUS_RDX)
        assert nxt == I and actions & A_FLUSH

    def test_tc_busrd_keeps_waiting(self, proto):
        assert proto.snoop(TC, BUS_RD) == (TC, A_NONE)

    def test_tc_busrdx_aborts(self, proto):
        assert proto.snoop(TC, BUS_RDX) == (I, A_NONE)


class TestTurnOffEdges:
    """The dashed edges: Turn-off/-, InvUpp, Grant."""

    def test_m_enters_td_with_invupp_and_writeback(self, proto):
        nxt, actions = proto.turn_off(M)
        assert nxt == TD
        assert actions & A_INV_UPPER and actions & A_WRITEBACK

    @pytest.mark.parametrize("state", [S, E])
    def test_clean_enters_tc_with_invupp(self, proto, state):
        nxt, actions = proto.turn_off(state)
        assert nxt == TC
        assert actions & A_INV_UPPER
        assert not actions & A_WRITEBACK

    def test_invalid_gates_directly(self, proto):
        nxt, actions = proto.turn_off(I)
        assert nxt == OFF and actions & A_GATE

    def test_off_idempotent(self, proto):
        assert proto.turn_off(OFF) == (OFF, A_NONE)

    @pytest.mark.parametrize("state", [TC, TD])
    def test_transient_defers(self, proto, state):
        nxt, actions = proto.turn_off(state)
        assert nxt == state
        assert actions & A_DEFER

    def test_grant_td_gates_with_flush(self, proto):
        nxt, actions = proto.grant(TD)
        assert nxt == OFF and actions & A_GATE and actions & A_FLUSH

    def test_grant_tc_gates(self, proto):
        nxt, actions = proto.grant(TC)
        assert nxt == OFF and actions & A_GATE

    @pytest.mark.parametrize("state", [I, S, E, M, OFF])
    def test_grant_only_from_transients(self, proto, state):
        with pytest.raises(ProtocolError):
            proto.grant(state)

    def test_wake_state_is_invalid(self, proto):
        assert proto.wake_state() == I


class TestStatePredicates:
    def test_stationary_states(self):
        from repro.coherence.states import is_stationary

        assert all(is_stationary(s) for s in (S, E, M))
        assert not any(is_stationary(s) for s in (I, OFF, TC, TD))

    def test_powered_states(self):
        from repro.coherence.states import is_powered

        assert all(is_powered(s) for s in (I, S, E, M, TC, TD))
        assert not is_powered(OFF)

    def test_dirty_states(self):
        from repro.coherence.states import is_dirty

        assert is_dirty(M) and is_dirty(TD)
        assert not any(is_dirty(s) for s in (I, S, E, OFF, TC))

    def test_names_unique(self):
        from repro.coherence.states import STATE_NAMES

        assert len(set(STATE_NAMES.values())) == len(STATE_NAMES)
