"""Shared snoopy bus: arbitration, occupancy, traffic accounting."""

import pytest

from repro.coherence.bus import BusConfig, SnoopyBus
from repro.coherence.events import BUS_RD, BUS_RDX, BUS_UPGR, BUS_WB


def make_bus(**kw):
    return SnoopyBus(BusConfig(**kw), line_bytes=64)


class TestOccupancy:
    def test_address_only_txn(self):
        bus = make_bus(clock_ratio=2, width_bytes=32, address_cycles=1)
        assert bus.occupancy_core_cycles(BUS_UPGR, 0) == 2  # 1 bus cycle

    def test_data_txn(self):
        bus = make_bus(clock_ratio=2, width_bytes=32, address_cycles=1)
        # 1 addr + ceil(64/32)=2 data cycles -> 3 bus cycles -> 6 core cycles
        assert bus.occupancy_core_cycles(BUS_RD, 64) == 6

    def test_partial_beat_rounds_up(self):
        bus = make_bus(clock_ratio=1, width_bytes=48, address_cycles=1)
        assert bus.occupancy_core_cycles(BUS_WB, 64) == 1 + 2

    def test_snoop_latency_in_core_cycles(self):
        bus = make_bus(clock_ratio=2, snoop_latency=2)
        assert bus.snoop_response_core_cycles() == 4


class TestArbitration:
    def test_idle_bus_grants_immediately(self):
        bus = make_bus()
        grant, done = bus.transact(100, BUS_RD, 64)
        assert grant == 100
        assert done > grant

    def test_fifo_backpressure(self):
        bus = make_bus(clock_ratio=2, width_bytes=32, address_cycles=1)
        g1, _ = bus.transact(0, BUS_RD, 64)    # occupies 6 core cycles
        g2, _ = bus.transact(1, BUS_RD, 64)    # must wait until 6
        assert g1 == 0
        assert g2 == 6
        assert bus.stats.wait_core_cycles == 5

    def test_no_wait_after_gap(self):
        bus = make_bus()
        bus.transact(0, BUS_RD, 64)
        g2, _ = bus.transact(1000, BUS_RD, 64)
        assert g2 == 1000

    def test_done_includes_snoop_response(self):
        bus = make_bus(clock_ratio=2, width_bytes=32, address_cycles=1,
                       snoop_latency=2)
        _, done = bus.transact(0, BUS_RD, 64)
        assert done == 6 + 4


class TestTrafficAccounting:
    def test_txn_counts(self):
        bus = make_bus()
        bus.read_miss(0)
        bus.read_exclusive(0)
        bus.upgrade(0)
        bus.writeback(0)
        bus.flush(0)
        st = bus.stats
        assert st.transactions == 5
        assert st.count(BUS_RD) == 1
        assert st.count(BUS_RDX) == 1
        assert st.count(BUS_UPGR) == 1

    def test_data_bytes_exclude_address_only(self):
        bus = make_bus()
        bus.upgrade(0)
        assert bus.stats.data_bytes == 0
        bus.read_miss(0)
        assert bus.stats.data_bytes == 64

    def test_busy_cycles_accumulate(self):
        bus = make_bus(clock_ratio=2, width_bytes=32, address_cycles=1)
        bus.transact(0, BUS_RD, 64)
        bus.transact(50, BUS_UPGR, 0)
        assert bus.stats.busy_core_cycles == 6 + 2

    def test_utilization(self):
        bus = make_bus(clock_ratio=2, width_bytes=32, address_cycles=1)
        bus.transact(0, BUS_RD, 64)
        assert bus.utilization(12) == pytest.approx(0.5)
        assert bus.utilization(0) == 0.0

    def test_summary_renders(self):
        bus = make_bus()
        bus.read_miss(0)
        assert "BusRd=1" in bus.stats.summary()


class TestConfigValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BusConfig(clock_ratio=0)
        with pytest.raises(ValueError):
            BusConfig(width_bytes=0)

    def test_peak_bandwidth(self):
        cfg = BusConfig(clock_ratio=2, width_bytes=32)
        assert cfg.peak_bandwidth_bytes_per_core_cycle() == 16.0
