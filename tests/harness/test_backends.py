"""Distributed sweep backends: serial equality, fault paths, protocol."""

import json
import os

import pytest

from repro.harness.backends import (
    BatchQueueBackend,
    SocketWorkStealingBackend,
    backend_names,
    make_backend,
    read_task_file,
    run_batch_worker,
    write_task_file,
)
from repro.harness.backends.batch import list_worker_result_dirs
from repro.harness.backends.socket_ws import _TaskServer
from repro.harness.executor import ParallelSweepRunner
from repro.harness.runner import SweepRunner, encode_entry
from repro.harness.spec import SweepPoint, grid_spec

SCALE = 0.04
#: 2 workloads x 1 size x 1 technique (+2 baseline twins) = 4 simulations
MATRIX = dict(benchmarks=["uniform", "pingpong"], sizes=[1], techniques=["protocol"])

#: the same matrix as a declarative spec (baseline listed explicitly)
MATRIX_SPEC = grid_spec(
    name="backend_matrix",
    workloads=["uniform", "pingpong"],
    sizes_mb=[1],
    techniques=["baseline", "protocol"],
)


def _blobs(runner):
    """Map of cache key -> raw entry bytes for a runner's cache."""
    out = {}
    for key, path in runner.cache.iter_entries():
        with open(path, "rb") as fh:
            out[key] = fh.read()
    return out


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    """The MATRIX swept by the serial runner (module-shared)."""
    runner = SweepRunner(
        scale=SCALE,
        cache_dir=str(tmp_path_factory.mktemp("serial") / "cache"),
        verbose=False,
    )
    return runner, runner.sweep(**MATRIX)


@pytest.fixture(scope="module")
def socket_run(tmp_path_factory):
    """The same MATRIX through the socket backend with 2 pull-workers."""
    backend = SocketWorkStealingBackend(spawn_workers=2, timeout=600)
    runner = ParallelSweepRunner(
        scale=SCALE,
        cache_dir=str(tmp_path_factory.mktemp("socket") / "cache"),
        verbose=False,
        backend=backend,
    )
    return runner, runner.sweep(**MATRIX)


@pytest.fixture(scope="module")
def batch_run(tmp_path_factory):
    """The same MATRIX through the batch backend with 2 sliced workers."""
    root = tmp_path_factory.mktemp("batch")
    backend = BatchQueueBackend(
        queue_dir=str(root / "queue"), spawn_workers=2, timeout=600
    )
    runner = ParallelSweepRunner(
        scale=SCALE,
        cache_dir=str(root / "cache"),
        verbose=False,
        backend=backend,
    )
    return runner, runner.sweep(**MATRIX)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(backend_names()) >= {"local", "socket", "batch"}

    def test_make_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            make_backend("carrier-pigeon")

    def test_runner_accepts_backend_by_name(self):
        runner = ParallelSweepRunner(
            scale=SCALE, cache_dir=None, verbose=False, backend="local", jobs=2
        )
        assert runner.backend.name == "local"
        # the named local backend must inherit the runner's job count,
        # not silently fall back to all cores
        assert runner.backend.jobs == 2


class TestSocketBackend:
    def test_metrics_match_serial(self, serial_run, socket_run):
        assert socket_run[1] == serial_run[1]

    def test_cache_blobs_byte_identical(self, serial_run, socket_run):
        s_blobs = _blobs(serial_run[0])
        p_blobs = _blobs(socket_run[0])
        assert set(s_blobs) == set(p_blobs)
        assert len(s_blobs) == 4
        assert s_blobs == p_blobs

    def test_every_task_went_over_the_wire(self, socket_run):
        stats = socket_run[0].backend.last_stats
        assert stats["served"] >= 4
        assert stats["duplicates"] == 0

    def test_worker_crash_mid_task_is_retried(self, serial_run, tmp_path):
        # worker 0 hard-exits after *receiving* its first task; worker 1
        # must steal the requeued point and the sweep still match serial
        backend = SocketWorkStealingBackend(
            spawn_workers=2, timeout=600, crash_plan={0: 1}
        )
        runner = ParallelSweepRunner(
            scale=SCALE,
            cache_dir=str(tmp_path / "cache"),
            verbose=False,
            backend=backend,
        )
        metrics = runner.sweep(
            benchmarks=["uniform"], sizes=[1], techniques=["protocol"]
        )
        expected = [
            m
            for m in serial_run[1]
            if m.workload == "uniform" and m.technique == "protocol"
        ]
        assert metrics == expected
        assert backend.last_stats["requeued"] >= 1

    def test_unrunnable_matrix_fails_after_retries(self, tmp_path):
        # both workers crash on their first task: every lease is lost,
        # attempts exhaust, and execute() must raise instead of hanging
        backend = SocketWorkStealingBackend(
            spawn_workers=2,
            timeout=600,
            max_attempts=2,
            crash_plan={0: 1, 1: 1},
        )
        runner = ParallelSweepRunner(
            scale=SCALE,
            cache_dir=str(tmp_path / "cache"),
            verbose=False,
            backend=backend,
        )
        with pytest.raises(
            RuntimeError, match="failed on every attempt|workers exited"
        ):
            runner.prefetch(
                benchmarks=["uniform"], sizes=[1], techniques=["protocol"]
            )


class TestDuplicateInstall:
    def test_duplicate_result_is_idempotent(self, serial_run, tmp_path):
        # a requeued task can complete twice (slow worker + its thief);
        # the second install must be a byte-identical no-op, not an error
        src_runner, _ = serial_run
        point = src_runner.point("uniform", 1, "protocol")
        res, energy = src_runner.run_point(point)
        blob = encode_entry(res, energy)
        msg = {"point": point.to_dict(), **blob}

        runner = SweepRunner(
            scale=SCALE, cache_dir=str(tmp_path / "cache"), verbose=False
        )
        server = _TaskServer(("127.0.0.1", 0), runner, [point])
        try:
            server.complete(point, msg, "worker-a")
            key = runner.point_key(point)
            first = runner.cache.read_bytes(key)
            assert first is not None
            server.complete(point, msg, "worker-b")
            assert runner.cache.read_bytes(key) == first
            assert server.stats["duplicates"] == 1
            assert server.finished.is_set()
        finally:
            server.server_close()

    def test_wire_point_preserves_digest(self, serial_run):
        # the acceptance property of transport: a point that crosses the
        # wire (canonical dict -> JSON -> dict) keeps its identity digest
        src_runner, _ = serial_run
        point = src_runner.point("uniform", 1, "protocol")
        wire = json.loads(json.dumps({"point": point.to_dict()}))
        rebuilt = SweepPoint.from_dict(wire["point"])
        assert rebuilt == point
        assert rebuilt.digest() == point.digest()
        assert src_runner.point_key(rebuilt) == src_runner.point_key(point)


class TestTimeouts:
    def test_batch_spawn_mode_honors_timeout(self, tmp_path):
        backend = BatchQueueBackend(
            queue_dir=str(tmp_path / "queue"), spawn_workers=1, timeout=0.05
        )
        runner = ParallelSweepRunner(
            scale=SCALE,
            cache_dir=str(tmp_path / "cache"),
            verbose=False,
            backend=backend,
        )
        with pytest.raises(TimeoutError, match="still running"):
            runner.prefetch(
                benchmarks=["uniform"], sizes=[1], techniques=["protocol"]
            )

    def test_socket_timeout_is_a_timeout_not_starvation(self, tmp_path):
        # healthy-but-slow workers at the deadline must surface as a
        # TimeoutError, not as "all workers exited"
        backend = SocketWorkStealingBackend(spawn_workers=1, timeout=0.05)
        runner = ParallelSweepRunner(
            scale=SCALE,
            cache_dir=str(tmp_path / "cache"),
            verbose=False,
            backend=backend,
        )
        with pytest.raises(TimeoutError, match="timed out"):
            runner.prefetch(
                benchmarks=["uniform"], sizes=[1], techniques=["protocol"]
            )


class TestBatchBackend:
    def test_metrics_match_serial(self, serial_run, batch_run):
        assert batch_run[1] == serial_run[1]

    def test_cache_blobs_byte_identical(self, serial_run, batch_run):
        assert _blobs(serial_run[0]) == _blobs(batch_run[0])

    def test_worker_shards_have_manifests(self, batch_run):
        # every worker publishes a manifest; with lease-based stealing
        # the split is dynamic, so only the union is guaranteed to cover
        # the matrix (a fast worker may have claimed everything)
        queue_dir = batch_run[0].backend.queue_dir
        shards = list_worker_result_dirs(queue_dir)
        assert len(shards) == 2
        from repro.harness.result_cache import ResultCache
        from repro.harness.runner import CACHE_VERSION

        counts = []
        for shard in shards:
            manifest = ResultCache(shard, CACHE_VERSION).read_manifest()
            assert manifest is not None
            counts.append(manifest["count"])
        assert sum(counts) >= 4

    def test_merge_reports_cover_all_points(self, batch_run):
        reports = batch_run[0].backend.last_reports
        assert sum(r.imported for r in reports) == 4
        assert sum(r.conflicts for r in reports) == 0

    def test_task_file_roundtrip(self, tmp_path):
        runner = SweepRunner(scale=SCALE, cache_dir=None, verbose=False)
        points = [
            runner.point("uniform", 1, "baseline"),
            runner.point("uniform", 1, "protocol"),
        ]
        write_task_file(str(tmp_path), {"scale": SCALE, "seed": 1}, points)
        payload = read_task_file(str(tmp_path))
        assert payload["points"] == points
        assert payload["params"]["scale"] == SCALE

    def test_task_file_rejects_other_cache_version(self, tmp_path):
        write_task_file(str(tmp_path), {}, [])
        path = tmp_path / "tasks.json"
        payload = json.loads(path.read_text())
        payload["cache_version"] -= 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="cache v"):
            read_task_file(str(tmp_path))

    def test_task_file_rejects_triple_format(self, tmp_path):
        # format 1 carried bare (workload, mb, technique) triples; a v2
        # reader must refuse it instead of misreading the specs
        write_task_file(str(tmp_path), {}, [])
        path = tmp_path / "tasks.json"
        payload = json.loads(path.read_text())
        payload["format"] = 1
        payload["specs"] = [["uniform", 1, "protocol"]]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="task-file format"):
            read_task_file(str(tmp_path))

    def test_worker_slices_partition_the_matrix(self, tmp_path, serial_run):
        # slices order preference, not ownership: the first worker steals
        # the absent second worker's points, the late worker finds every
        # point settled, and a coordinator ingesting both shards serves
        # the full matrix
        queue_dir = str(tmp_path / "queue")
        runner = ParallelSweepRunner(
            scale=SCALE,
            cache_dir=str(tmp_path / "cache"),
            verbose=False,
            jobs=1,
        )
        points = runner.plan(["uniform"], [1], ["protocol"])
        write_task_file(queue_dir, runner.runner_params(), points)
        done0 = run_batch_worker(queue_dir, "w0", task_slice=(0, 2))
        done1 = run_batch_worker(queue_dir, "w1", task_slice=(1, 2))
        assert done0 + done1 == len(points) == 2
        backend = BatchQueueBackend(queue_dir=queue_dir, spawn_workers=0)
        assert backend.collect(runner, points) == []
        assert {os.path.basename(d) for d in list_worker_result_dirs(queue_dir)} == {
            "w0",
            "w1",
        }

    def test_collect_never_mutates_worker_shards(self, tmp_path, serial_run):
        # a half-synced (corrupt) blob in a worker's shard must be
        # skipped, not unlinked: the shard belongs to the worker, and a
        # later sync may complete the file
        src_runner, _ = serial_run
        point = src_runner.point("uniform", 1, "protocol")
        key = src_runner.point_key(point)
        queue_dir = str(tmp_path / "queue")
        shard_dir = os.path.join(queue_dir, "results", "half-synced")
        from repro.harness.result_cache import ResultCache
        from repro.harness.runner import CACHE_VERSION

        shard = ResultCache(shard_dir, CACHE_VERSION)
        shard.put_bytes(key, src_runner.cache.read_bytes(key)[:20])
        runner = SweepRunner(scale=SCALE, cache_dir=None, verbose=False)
        backend = BatchQueueBackend(queue_dir=queue_dir, spawn_workers=0)
        assert backend.collect(runner, [point]) == [point]
        assert shard.read_bytes(key) is not None  # still on the shard

    def test_collect_skips_schema_invalid_shard_entry(self, tmp_path, serial_run):
        # JSON-valid but wrong-shape entries must be re-awaited like
        # corrupt ones, not crash the coordinator
        src_runner, _ = serial_run
        point = src_runner.point("uniform", 1, "protocol")
        key = src_runner.point_key(point)
        queue_dir = str(tmp_path / "queue")
        from repro.harness.result_cache import ResultCache
        from repro.harness.runner import CACHE_VERSION

        shard = ResultCache(
            os.path.join(queue_dir, "results", "divergent"), CACHE_VERSION
        )
        shard.put(key, {"unexpected": "shape"})
        runner = SweepRunner(scale=SCALE, cache_dir=None, verbose=False)
        backend = BatchQueueBackend(queue_dir=queue_dir, spawn_workers=0)
        assert backend.collect(runner, [point]) == [point]

    def test_stale_manifest_shard_is_awaited_not_fatal(self, tmp_path, serial_run):
        # a worker that died between writing its manifest and its blobs
        # leaves stale manifest rows; collect() must keep waiting for the
        # missing points instead of crashing or installing garbage
        src_runner, _ = serial_run
        queue_dir = str(tmp_path / "queue")
        runner = SweepRunner(
            scale=SCALE, cache_dir=str(tmp_path / "cache"), verbose=False
        )
        points = [
            src_runner.point("uniform", 1, "baseline"),
            src_runner.point("uniform", 1, "protocol"),
        ]
        shard_dir = os.path.join(queue_dir, "results", "dead-worker")
        from repro.harness.result_cache import ResultCache
        from repro.harness.runner import CACHE_VERSION

        shard = ResultCache(shard_dir, CACHE_VERSION)
        for point in points:
            key = src_runner.point_key(point)
            shard.put_bytes(key, src_runner.cache.read_bytes(key))
        shard.write_manifest()
        lost_key = src_runner.point_key(points[1])
        os.unlink(shard.path_for(lost_key))

        backend = BatchQueueBackend(queue_dir=queue_dir, spawn_workers=0)
        missing = backend.collect(runner, points)
        assert missing == [points[1]]
        assert sum(r.stale_manifest for r in backend.last_reports) == 1
        # the surviving entry was ingested byte-for-byte
        key = src_runner.point_key(points[0])
        assert runner.cache.read_bytes(key) == src_runner.cache.read_bytes(key)


class TestSpecDrivenSweeps:
    """The acceptance seam: spec files drive backends byte-identically."""

    def test_spec_through_local_backend_matches_serial(
        self, serial_run, tmp_path
    ):
        runner = ParallelSweepRunner(
            scale=SCALE,
            cache_dir=str(tmp_path / "cache"),
            verbose=False,
            jobs=2,
        )
        metrics = runner.run_spec(MATRIX_SPEC)
        # the spec lists baseline rows explicitly; the triple-driven
        # serial sweep interleaves per (size, workload) — compare as sets
        # of per-point metrics plus the exact blob bytes below
        assert {
            (m.workload, m.total_mb, m.technique) for m in metrics
        } >= {(m.workload, m.total_mb, m.technique) for m in serial_run[1]}
        for m in serial_run[1]:
            assert m in metrics
        assert _blobs(serial_run[0]) == _blobs(runner)

    def test_spec_through_batch_backend_matches_serial(
        self, serial_run, tmp_path
    ):
        backend = BatchQueueBackend(
            queue_dir=str(tmp_path / "queue"), spawn_workers=2, timeout=600
        )
        runner = ParallelSweepRunner(
            scale=SCALE,
            cache_dir=str(tmp_path / "cache"),
            verbose=False,
            backend=backend,
        )
        runner.run_spec(MATRIX_SPEC)
        assert _blobs(serial_run[0]) == _blobs(runner)

    def test_spec_survives_toml_transport_before_execution(self, tmp_path):
        # author -> TOML file -> reload -> identical expansion digests
        path = str(tmp_path / "matrix.toml")
        from repro.harness.spec import load_spec, save_spec

        save_spec(MATRIX_SPEC, path)
        reloaded = load_spec(path)
        assert reloaded == MATRIX_SPEC
        a = [p.digest() for p in MATRIX_SPEC.expand(scale=SCALE)]
        b = [p.digest() for p in reloaded.expand(scale=SCALE)]
        assert a == b
