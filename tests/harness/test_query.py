"""Unit tests of the formal result-query API (no simulation needed)."""

from __future__ import annotations

import pytest

from repro.harness.metrics import PointMetrics, metrics_by_point, select_metrics
from repro.harness.query import (
    PROJECTION_FIELDS,
    QUERY_FIELDS,
    QueryError,
    ResultQuery,
    index_by_triple,
)


def mk(workload, total_mb, technique, **kw) -> PointMetrics:
    """A metric row with recognizable default values."""
    values = dict(
        occupancy=0.9,
        miss_rate=0.01,
        bandwidth_increase=0.0,
        amat_increase=0.0,
        ipc_loss=0.02,
        energy_reduction=0.1,
        l2_leakage_share=0.3,
    )
    values.update(kw)
    return PointMetrics(
        workload=workload, total_mb=total_mb, technique=technique, **values
    )


ROWS = [
    mk("uniform", 1, "baseline", energy_reduction=0.0),
    mk("uniform", 1, "protocol", energy_reduction=0.10),
    mk("uniform", 4, "protocol", energy_reduction=0.25),
    mk("fft", 4, "decay64K", energy_reduction=0.40, n_cores=8),
    mk("fft", 8, "decay64K", energy_reduction=0.44),
]


class TestFiltering:
    def test_zero_query_selects_everything_unchanged(self):
        assert ResultQuery().apply(ROWS) == ROWS

    def test_each_axis_filters(self):
        assert len(ResultQuery(workloads=("uniform",)).apply(ROWS)) == 3
        assert len(ResultQuery(sizes_mb=(4,)).apply(ROWS)) == 2
        assert len(ResultQuery(techniques=("protocol",)).apply(ROWS)) == 2
        assert len(ResultQuery(cores=(8,)).apply(ROWS)) == 1

    def test_axes_are_or_within_and_across(self):
        q = ResultQuery(workloads=("uniform", "fft"), sizes_mb=(4,))
        assert [(m.workload, m.total_mb) for m in q.apply(ROWS)] == [
            ("uniform", 4),
            ("fft", 4),
        ]

    def test_cores_filter_excludes_default_core_rows(self):
        # rows inheriting the runner default carry n_cores=None and are
        # not matched by an explicit cores filter
        assert ResultQuery(cores=(4,)).apply(ROWS) == []


class TestArrange:
    def test_sort_ascending_and_descending(self):
        up = ResultQuery(sort=("energy_reduction",)).apply(ROWS)
        assert [m.energy_reduction for m in up] == sorted(
            m.energy_reduction for m in ROWS
        )
        down = ResultQuery(sort=("-energy_reduction",)).apply(ROWS)
        assert down == list(reversed(up))

    def test_multi_key_sort_is_stable_left_to_right(self):
        q = ResultQuery(sort=("workload", "-total_mb"))
        got = [(m.workload, m.total_mb) for m in q.apply(ROWS)]
        assert got == [("fft", 8), ("fft", 4), ("uniform", 4), ("uniform", 1),
                       ("uniform", 1)]

    def test_none_values_sort_last(self):
        rows = [mk("a", 1, "t", n_cores=None), mk("b", 1, "t", n_cores=2)]
        got = ResultQuery(sort=("n_cores",)).apply(rows)
        assert [m.workload for m in got] == ["b", "a"]

    def test_limit_truncates_after_sort(self):
        q = ResultQuery(sort=("-energy_reduction",), limit=2)
        assert [m.energy_reduction for m in q.apply(ROWS)] == [0.44, 0.40]

    def test_sort_reads_ensemble_stats_means(self):
        from repro.scenarios.stats import EnsembleMetrics, SummaryStat

        def stat(v):
            return SummaryStat(mean=v, stddev=0.0, ci95=0.0, n=3)

        rows = [
            EnsembleMetrics("a", 1, "t", stats={"ipc_loss": stat(0.3)}),
            EnsembleMetrics("b", 1, "t", stats={"ipc_loss": stat(0.1)}),
        ]
        got = ResultQuery(sort=("ipc_loss",)).arrange(rows)
        assert [r.workload for r in got] == ["b", "a"]

    def test_sort_on_unknown_row_shape_raises(self):
        with pytest.raises(QueryError, match="cannot sort"):
            ResultQuery(sort=("occupancy",)).arrange([object()])


class TestProjection:
    def test_default_projection_keeps_all_columns(self):
        row = {"digest": "d", "workload": "uniform"}
        assert ResultQuery().project(row) == row

    def test_fields_project_and_order(self):
        q = ResultQuery(fields=("digest", "energy_reduction"))
        row = {"digest": "d", "workload": "u", "energy_reduction": 0.1}
        assert q.project(row) == {"digest": "d", "energy_reduction": 0.1}


class TestValidation:
    def test_unknown_sort_column_rejected(self):
        with pytest.raises(QueryError, match="unknown sort column"):
            ResultQuery(sort=("speed",))

    def test_unknown_field_rejected(self):
        with pytest.raises(QueryError, match="unknown field"):
            ResultQuery(fields=("nope",))

    def test_bad_limit_rejected(self):
        with pytest.raises(QueryError, match="limit"):
            ResultQuery(limit=0)

    def test_bad_size_rejected(self):
        with pytest.raises(QueryError, match="size filters"):
            ResultQuery(sizes_mb=(0,))

    def test_digest_is_projectable_but_not_sortable(self):
        assert "digest" in PROJECTION_FIELDS
        assert "digest" not in QUERY_FIELDS
        with pytest.raises(QueryError):
            ResultQuery(sort=("digest",))


class TestParsing:
    def test_parse_compact_form(self):
        q = ResultQuery.parse(
            "workload=uniform,fft size=4 sort=-energy_reduction "
            "fields=digest,workload limit=5"
        )
        assert q == ResultQuery(
            workloads=("uniform", "fft"),
            sizes_mb=(4,),
            sort=("-energy_reduction",),
            fields=("digest", "workload"),
            limit=5,
        )

    def test_empty_string_is_the_zero_query(self):
        assert ResultQuery.parse("") == ResultQuery()

    def test_aliases(self):
        for text in ("size=4", "sizes=4", "size_mb=4", "total_mb=4"):
            assert ResultQuery.parse(text).sizes_mb == (4,)
        for text in ("cores=8", "n_cores=8"):
            assert ResultQuery.parse(text).cores == (8,)
        assert ResultQuery.parse("technique=decay64K").techniques == (
            "decay64K",
        )

    def test_repeated_keys_extend_the_axis(self):
        q = ResultQuery.from_params([("workload", "a"), ("workload", "b")])
        assert q.workloads == ("a", "b")

    def test_unknown_key_rejected(self):
        with pytest.raises(QueryError, match="unknown query key"):
            ResultQuery.parse("speed=9")

    def test_non_integer_size_rejected(self):
        with pytest.raises(QueryError, match="integers"):
            ResultQuery.parse("size=big")

    def test_token_without_equals_rejected(self):
        with pytest.raises(QueryError, match="key=value"):
            ResultQuery.parse("workload")


class TestSerialization:
    Q = ResultQuery(
        workloads=("uniform",),
        sizes_mb=(1, 4),
        techniques=("protocol",),
        sort=("-energy_reduction",),
        fields=("digest", "workload", "energy_reduction"),
        limit=3,
    )

    def test_dict_round_trip_omits_empty_axes(self):
        data = ResultQuery(workloads=("a",)).to_dict()
        assert data == {"workloads": ["a"]}
        assert ResultQuery.from_dict(data) == ResultQuery(workloads=("a",))

    def test_json_round_trip(self):
        assert ResultQuery.from_json(self.Q.to_json()) == self.Q

    def test_toml_round_trip(self):
        assert ResultQuery.from_toml(self.Q.to_toml()) == self.Q

    def test_unknown_dict_key_rejected(self):
        with pytest.raises(QueryError, match="unknown query keys"):
            ResultQuery.from_dict({"speed": 1})

    def test_queries_are_frozen_and_hashable(self):
        assert hash(self.Q) == hash(ResultQuery.from_json(self.Q.to_json()))


class TestIndexByTriple:
    def test_indexes_rows(self):
        idx = index_by_triple(ROWS)
        assert idx[("uniform", 4, "protocol")] is ROWS[2]
        assert len(idx) == len(ROWS)


class TestDeprecatedShims:
    def test_select_metrics_warns_and_forwards(self):
        with pytest.deprecated_call():
            got = select_metrics(ROWS, workload="uniform", total_mb=1)
        assert got == ResultQuery(
            workloads=("uniform",), sizes_mb=(1,)
        ).apply(ROWS)

    def test_metrics_by_point_warns_and_forwards(self):
        with pytest.deprecated_call():
            got = metrics_by_point(ROWS)
        assert got == index_by_triple(ROWS)
