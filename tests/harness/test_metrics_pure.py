"""Pure metric functions on synthetic inputs (sign conventions etc.)."""

import pytest

from repro.harness import metrics
from repro.power.energy import EnergyBreakdown
from repro.sim.stats import L1Stats, L2Stats, MemoryStats, SimResult


def result_with(amat_lat=100, loads=10, mem_bytes=1000, ipc_instr=2000,
                cycles=1000):
    res = SimResult("k", "w", total_cycles=cycles, n_lines_per_l2=10)
    res.l1 = [L1Stats(loads=loads, load_latency_sum=amat_lat * loads)]
    res.l2 = [L2Stats()]
    res.memory = MemoryStats(bytes_read=mem_bytes)
    from repro.sim.stats import CoreStats

    res.cores = [CoreStats(instructions=ipc_instr, cycles=cycles)]
    return res


class TestRatioMetrics:
    def test_bandwidth_increase_sign(self):
        base = result_with(mem_bytes=1000)
        worse = result_with(mem_bytes=1500)
        assert metrics.bandwidth_increase(base, worse) == pytest.approx(0.5)
        assert metrics.bandwidth_increase(base, base) == 0.0

    def test_amat_increase(self):
        base = result_with(amat_lat=100)
        worse = result_with(amat_lat=110)
        assert metrics.amat_increase(base, worse) == pytest.approx(0.10)

    def test_ipc_loss(self):
        base = result_with(cycles=1000)
        slower = result_with(cycles=1250)
        assert metrics.ipc_loss(base, slower) == pytest.approx(0.2)
        assert metrics.ipc_loss(base, base) == 0.0

    def test_energy_reduction(self):
        a = EnergyBreakdown(core_dynamic=10.0)
        b = EnergyBreakdown(core_dynamic=7.0)
        assert metrics.energy_reduction(a, b) == pytest.approx(0.3)

    def test_zero_baselines_guarded(self):
        empty = result_with(mem_bytes=0, loads=0)
        assert metrics.bandwidth_increase(empty, empty) == 0.0
        assert metrics.amat_increase(result_with(amat_lat=0), empty) == 0.0
        assert metrics.energy_reduction(EnergyBreakdown(),
                                        EnergyBreakdown()) == 0.0


class TestDecayInducedFraction:
    def test_fraction(self):
        res = result_with()
        res.l2[0].reads = 90
        res.l2[0].writes = 10
        res.l2[0].decay_induced_misses = 5
        assert metrics.decay_induced_miss_fraction(res) == pytest.approx(0.05)

    def test_empty(self):
        assert metrics.decay_induced_miss_fraction(result_with()) == 0.0


class TestPointMetrics:
    def test_compute_and_dict(self):
        base = result_with()
        opt = result_with(cycles=1100, mem_bytes=1200)
        e_base = EnergyBreakdown(core_dynamic=10.0, l2_leakage=3.0,
                                 temperatures={"core0": 350.0})
        e_opt = EnergyBreakdown(core_dynamic=9.0, l2_leakage=1.0,
                                temperatures={"core0": 345.0})
        m = metrics.PointMetrics.compute(
            "wl", 4, "decay64K", base, e_base, opt, e_opt)
        assert m.total_mb == 4
        assert m.ipc_loss > 0
        assert m.energy_reduction > 0
        d = m.as_dict()
        assert d["technique"] == "decay64K"
        assert d["peak_temp_c"] == pytest.approx(345.0 - 273.15)
