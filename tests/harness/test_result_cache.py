"""Sharded result cache: atomicity, corruption recovery, maintenance."""

import json
import multiprocessing
import os

import pytest

from repro.harness.result_cache import (
    MANIFEST_NAME,
    MergeReport,
    ResultCache,
    shard_of,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"), version=8)


class TestBasicIO:
    def test_roundtrip(self, cache):
        cache.put("k1", {"a": 1})
        assert cache.get("k1") == {"a": 1}
        assert "k1" in cache
        assert "k2" not in cache

    def test_miss(self, cache):
        assert cache.get("absent") is None

    def test_sharded_layout(self, cache):
        cache.put("k1", {"a": 1})
        path = cache.path_for("k1")
        assert os.path.exists(path)
        assert os.path.basename(os.path.dirname(path)) == shard_of("k1")
        assert f"v{cache.version}" in path

    def test_shard_is_hash_stable(self):
        # sharding must not depend on PYTHONHASHSEED (pool workers compute
        # shards independently of the parent process)
        import hashlib

        expected = hashlib.sha1(b"some-key").hexdigest()[:2]
        assert shard_of("some-key") == expected

    def test_put_leaves_no_tmp_files(self, cache):
        for i in range(10):
            cache.put(f"k{i}", {"i": i})
        for dirpath, _, names in os.walk(cache.root):
            assert not [n for n in names if n.startswith(".tmp-")]

    def test_invalidate(self, cache):
        cache.put("k1", {"a": 1})
        assert cache.invalidate("k1")
        assert cache.get("k1") is None
        assert not cache.invalidate("k1")


class TestCorruptionRecovery:
    def test_truncated_entry_is_dropped(self, cache):
        cache.put("k1", {"a": 1})
        path = cache.path_for("k1")
        with open(path, "w") as fh:
            fh.write('{"a": 1')  # the pre-fix interrupted-write shape
        assert cache.get("k1") is None
        assert not os.path.exists(path)
        # a later put works again
        cache.put("k1", {"a": 2})
        assert cache.get("k1") == {"a": 2}

    def test_non_dict_entry_is_dropped(self, cache):
        cache.put("k1", {"a": 1})
        with open(cache.path_for("k1"), "w") as fh:
            json.dump([1, 2, 3], fh)
        assert cache.get("k1") is None

    def test_prune_removes_corrupt(self, cache):
        cache.put("ok", {"a": 1})
        cache.put("bad", {"a": 1})
        with open(cache.path_for("bad"), "w") as fh:
            fh.write("not json")
        report = cache.prune()
        assert report.corrupt_entries == 1
        assert cache.get("ok") == {"a": 1}


class TestVersioning:
    def test_version_bump_invalidates(self, tmp_path):
        old = ResultCache(str(tmp_path), version=7)
        old.put("k1", {"a": 1})
        new = ResultCache(str(tmp_path), version=8)
        assert new.get("k1") is None
        # the old entry is untouched until pruned
        assert old.get("k1") == {"a": 1}

    def test_stats_per_version(self, tmp_path):
        ResultCache(str(tmp_path), version=7).put("k1", {"a": 1})
        cache = ResultCache(str(tmp_path), version=8)
        cache.put("k2", {"a": 2})
        st = cache.stats()
        assert st.versions[7][0] == 1
        assert st.versions[8][0] == 1
        assert st.entries == 1  # current version only
        assert "v8" in st.render()

    def test_prune_drops_stale_versions_and_legacy(self, tmp_path):
        ResultCache(str(tmp_path), version=7).put("k1", {"a": 1})
        # legacy flat file from the pre-sharded layout
        with open(tmp_path / "v7-old-key.json", "w") as fh:
            json.dump({"a": 1}, fh)
        cache = ResultCache(str(tmp_path), version=8)
        cache.put("k2", {"a": 2})
        report = cache.prune()
        assert report.stale_versions == 1
        assert report.stale_entries == 1
        assert report.legacy_files == 1
        assert cache.get("k2") == {"a": 2}
        assert not os.path.exists(tmp_path / "v7")
        assert not os.path.exists(tmp_path / "v7-old-key.json")


class TestManifest:
    def test_write_and_read(self, cache):
        cache.put("k1", {"a": 1})
        cache.put("k2", {"b": 2})
        path = cache.write_manifest()
        assert os.path.basename(path) == MANIFEST_NAME
        manifest = cache.read_manifest()
        assert manifest["count"] == 2
        assert set(manifest["entries"]) == {"k1", "k2"}
        assert manifest["entries"]["k1"]["shard"] == shard_of("k1")

    def test_manifest_not_listed_as_entry(self, cache):
        cache.put("k1", {"a": 1})
        cache.write_manifest()
        assert [k for k, _ in cache.iter_entries()] == ["k1"]
        assert cache.stats().entries == 1

    def test_manifest_drops_vanished_blob(self, cache):
        """Regression: a key whose blob file vanished must not be listed.

        The provenance sidecar survives the deletion — the manifest must
        go by the blob (what ``read_bytes`` can actually serve), never by
        leftover metadata.
        """
        cache.put("k1", {"a": 1})
        cache.put("k2", {"b": 2})
        cache.put_provenance("k2", {"worker": "w0"})
        cache.write_manifest()
        os.unlink(cache.path_for("k2"))  # blob gone; sidecar remains
        fresh = cache.build_manifest()
        assert set(fresh["entries"]) == {"k1"}
        assert fresh["count"] == 1
        # every listed key must be readable right now
        assert all(cache.read_bytes(k) is not None for k in fresh["entries"])
        # rewriting replaces the stale on-disk snapshot too
        cache.write_manifest()
        assert set(cache.read_manifest()["entries"]) == {"k1"}

    def test_manifest_drops_blob_vanishing_mid_build(self, cache, monkeypatch):
        """A blob deleted between directory listing and stat is dropped."""
        import repro.harness.result_cache as rc

        cache.put("k1", {"a": 1})
        cache.put("k2", {"b": 2})
        k2_path = cache.path_for("k2")
        real_getsize = os.path.getsize

        def racing_getsize(path):
            if path == k2_path:
                if os.path.exists(path):
                    os.unlink(path)  # simulate a concurrent prune
                return real_getsize(path)  # raises OSError
            return real_getsize(path)

        monkeypatch.setattr(rc.os.path, "getsize", racing_getsize)
        manifest = cache.build_manifest()
        assert set(manifest["entries"]) == {"k1"}


class TestImportEntries:
    """Multi-host sync: manifest-driven, byte-for-byte shard merging."""

    @pytest.fixture
    def source(self, tmp_path):
        src = ResultCache(str(tmp_path / "src"), version=8)
        src.put("k1", {"a": 1})
        src.put("k2", {"b": 2})
        return src

    def test_import_into_empty_cache(self, cache, source):
        source.write_manifest()
        report = cache.import_entries(source)
        assert (report.imported, report.identical, report.conflicts) == (2, 0, 0)
        assert cache.get("k1") == {"a": 1}
        # byte-for-byte, not a re-encode
        assert cache.read_bytes("k2") == source.read_bytes("k2")

    def test_import_accepts_a_path(self, cache, source):
        report = cache.import_entries(source.root)
        assert report.imported == 2

    def test_import_without_manifest_walks_shards(self, cache, source):
        assert source.read_manifest() is None
        report = cache.import_entries(source)
        assert report.imported == 2
        assert report.stale_manifest == 0

    def test_reimport_is_idempotent(self, cache, source):
        cache.import_entries(source)
        report = cache.import_entries(source)
        assert (report.imported, report.identical) == (0, 2)

    def test_exclude_skips_settled_keys_without_io(self, cache, source):
        cache.import_entries(source)
        report = cache.import_entries(source, exclude={"k1", "k2"})
        assert report.excluded == 2
        assert report.examined == 0
        assert "previously merged" in report.render()

    def test_conflicting_entry_keeps_local(self, cache, source):
        cache.put("k1", {"a": "local truth"})
        report = cache.import_entries(source)
        assert report.conflicts == 1
        assert report.imported == 1  # k2 still arrives
        assert cache.get("k1") == {"a": "local truth"}

    def test_entries_newer_than_manifest_still_merge(self, cache, source):
        # a worker that wrote blobs after its manifest snapshot (rerun
        # against a grown task file, died before re-snapshotting) must
        # not have those newer entries ignored by the merge
        source.write_manifest()
        source.put("k3", {"c": 3})
        report = cache.import_entries(source)
        assert report.imported == 3
        assert cache.get("k3") == {"c": 3}

    def test_stale_manifest_rows_are_counted_not_fatal(self, cache, source):
        # manifest written, then a blob lost (worker died mid-sync)
        source.write_manifest()
        os.unlink(source.path_for("k1"))
        report = cache.import_entries(source)
        assert report.stale_manifest == 1
        assert report.imported == 1
        assert cache.get("k1") is None
        assert cache.get("k2") == {"b": 2}

    def test_corrupt_source_blob_never_imported(self, cache, source):
        with open(source.path_for("k1"), "w") as fh:
            fh.write("not json")
        report = cache.import_entries(source)
        assert report.corrupt == 1
        assert report.imported == 1
        assert cache.get("k1") is None

    def test_put_bytes_roundtrip_and_atomicity(self, cache):
        data = b'{"x": 1}'
        cache.put_bytes("kb", data)
        assert cache.read_bytes("kb") == data
        assert cache.get("kb") == {"x": 1}
        for dirpath, _, names in os.walk(cache.root):
            assert not [n for n in names if n.startswith(".tmp-")]

    def test_report_render_and_examined(self):
        report = MergeReport(
            source="s", imported=2, identical=1, conflicts=1, stale_manifest=3
        )
        assert report.examined == 4
        assert "2 imported" in report.render()
        assert "3 stale" in report.render()


def _hammer(args):
    """Worker: write many entries into a shared cache."""
    root, worker_id, n = args
    cache = ResultCache(root, version=8)
    for i in range(n):
        # every worker also writes the contended shared key
        cache.put("shared", {"worker": worker_id, "i": i})
        cache.put(f"w{worker_id}-{i}", {"worker": worker_id, "i": i})
    return worker_id


class TestParallelWriters:
    def test_concurrent_writers_do_not_clobber(self, tmp_path):
        root = str(tmp_path / "cache")
        n_workers, n_puts = 4, 25
        with multiprocessing.get_context().Pool(n_workers) as pool:
            done = pool.map(
                _hammer, [(root, w, n_puts) for w in range(n_workers)]
            )
        assert sorted(done) == list(range(n_workers))
        cache = ResultCache(root, version=8)
        # every entry parses (atomic publication: no torn writes) ...
        entries = dict(cache.iter_entries())
        assert len(entries) == n_workers * n_puts + 1
        for key in entries:
            assert cache.get(key) is not None, key
        # ... including the key all workers raced on
        assert cache.get("shared")["i"] == n_puts - 1
        # and no tmp droppings survived
        assert cache.prune().removed == 0
