"""Experiment-spec API: round-trips, validation, digest stability."""

import json
import os
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.harness.runner import SweepRunner
from repro.harness.spec import (
    ExperimentSpec,
    SpecError,
    SweepPoint,
    dumps_toml,
    grid_spec,
    load_spec,
    loads_toml,
    paper_matrix_spec,
    parse_toml_minimal,
    resolve_technique,
    save_spec,
)
from repro.sim.config import (
    PAPER_TOTAL_L2_MB,
    TechniqueConfig,
    paper_technique_order,
)
from repro.workloads.registry import PAPER_BENCHMARKS

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
SPECS_DIR = os.path.join(REPO_ROOT, "specs")


def _custom_spec() -> ExperimentSpec:
    """A spec exercising every section: custom techs, run, skip, points."""
    return ExperimentSpec(
        name="kitchen_sink",
        description="everything at once",
        workloads=("uniform", "pingpong"),
        sizes_mb=(1, 4),
        techniques=("baseline", "decay24K"),
        custom_techniques={
            "decay24K": TechniqueConfig(
                name="decay",
                decay_cycles=24_000,
                counter_mode="hierarchical",
                counter_bits=3,
            )
        },
        run={"scale": 0.05, "seed": 7},
        skip=({"workload": "pingpong", "size_mb": 4},),
        points=(
            {
                "workload": "streaming",
                "size_mb": 2,
                "technique": "decay24K",
                "n_cores": 8,
            },
        ),
    )


class TestSweepPoint:
    def test_label_defaults_to_technique_label(self):
        p = SweepPoint(workload="uniform", total_mb=1)
        assert p.tech_label == "baseline"
        q = SweepPoint(
            workload="uniform",
            total_mb=1,
            technique=TechniqueConfig(name="decay", decay_cycles=64_000),
        )
        assert q.tech_label == "decay64K"

    def test_dict_roundtrip_with_overrides(self):
        p = SweepPoint(
            workload="fmm",
            total_mb=8,
            technique=TechniqueConfig(name="selective_decay", decay_cycles=9_999),
            tech_label="sel_decay_odd",
            n_cores=8,
            scale=0.25,
        )
        d = json.loads(json.dumps(p.to_dict()))
        assert SweepPoint.from_dict(d) == p

    def test_unset_overrides_omitted_from_dict(self):
        p = SweepPoint(workload="uniform", total_mb=1)
        assert set(p.to_dict()) == {"workload", "total_mb", "tech_label",
                                    "technique"}

    def test_baseline_twin(self):
        p = SweepPoint(
            workload="uniform",
            total_mb=2,
            technique=TechniqueConfig(name="decay", decay_cycles=6_400),
            tech_label="decay64K",
            n_cores=8,
        )
        twin = p.baseline_twin()
        assert twin.tech_label == "baseline"
        assert twin.technique.name == "baseline"
        assert twin.n_cores == 8  # context overrides survive
        assert twin.baseline_twin() is twin

    def test_invalid_points_rejected(self):
        with pytest.raises(SpecError):
            SweepPoint(workload="", total_mb=1)
        with pytest.raises(SpecError):
            SweepPoint(workload="uniform", total_mb=0)
        with pytest.raises(SpecError):
            SweepPoint(workload="uniform", total_mb=1, warmup=1.5)
        with pytest.raises(SpecError):
            SweepPoint.from_dict({"workload": "uniform"})
        with pytest.raises(SpecError):
            SweepPoint.from_dict(
                {"workload": "u", "total_mb": 1,
                 "technique": {"name": "baseline"}, "bogus": 1}
            )

    def test_digest_distinguishes_decay_cycles(self):
        # off-grid decay times that share a label-k must not collide
        a = SweepPoint(
            workload="uniform", total_mb=1,
            technique=TechniqueConfig(name="decay", decay_cycles=51_200),
            tech_label="decay512K",
        )
        b = SweepPoint(
            workload="uniform", total_mb=1,
            technique=TechniqueConfig(name="decay", decay_cycles=51_000),
            tech_label="decay512K",
        )
        assert a.digest() != b.digest()
        runner = SweepRunner(scale=0.1, cache_dir=None, verbose=False)
        assert runner.point_key(a) != runner.point_key(b)


class TestDigestStability:
    def _digest_in_subprocess(self, hashseed: str) -> str:
        code = (
            "from repro.harness.spec import SweepPoint\n"
            "from repro.harness.runner import SweepRunner\n"
            "from repro.sim.config import TechniqueConfig\n"
            "p = SweepPoint(workload='uniform', total_mb=2,\n"
            "               technique=TechniqueConfig(name='decay',\n"
            "                                         decay_cycles=6400),\n"
            "               tech_label='decay64K', n_cores=8)\n"
            "r = SweepRunner(scale=0.1, cache_dir=None, verbose=False)\n"
            "print(p.digest())\n"
            "print(r.point_key(p))\n"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH", "")]
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return out.stdout

    def test_digest_and_key_survive_hashseed_changes(self):
        # the property the distributed cache relies on: every process on
        # every host computes the same key for the same point
        assert self._digest_in_subprocess("0") == self._digest_in_subprocess(
            "4242"
        )


class TestSpecRoundTrip:
    def test_json_toml_spec_equality(self):
        spec = _custom_spec()
        via_json = ExperimentSpec.from_json(spec.to_json())
        via_toml = ExperimentSpec.from_toml(spec.to_toml())
        assert via_json == spec
        assert via_toml == spec
        # and the two serialized forms describe identical dicts
        assert json.loads(spec.to_json()) == loads_toml(spec.to_toml())

    def test_expansion_survives_serialization(self):
        spec = _custom_spec()
        reloaded = ExperimentSpec.from_toml(spec.to_toml())
        a = [p.digest() for p in spec.expand(scale=0.05)]
        b = [p.digest() for p in reloaded.expand(scale=0.05)]
        assert a == b

    def test_file_roundtrip_both_formats(self, tmp_path):
        spec = _custom_spec()
        for name in ("s.toml", "s.json"):
            path = str(tmp_path / name)
            save_spec(spec, path)
            assert load_spec(path) == spec
        with pytest.raises(SpecError, match="toml or .json"):
            save_spec(spec, str(tmp_path / "s.yaml"))

    def test_minimal_toml_parser_matches_tomllib(self):
        # the 3.10 fallback parser must agree with tomllib on everything
        # the emitter produces (plus comments and multi-line arrays)
        text = _custom_spec().to_toml()
        hand_edited = text.replace(
            'workloads = ["uniform", "pingpong"]',
            'workloads = [  # the two synthetic checks\n'
            '  "uniform",\n  "pingpong",\n]',
        )
        assert parse_toml_minimal(text) == loads_toml(text)
        assert parse_toml_minimal(hand_edited) == loads_toml(text)

    def test_minimal_parser_handles_brackets_inside_strings(self):
        # a lone "[" in a quoted value is data, not an array opener; the
        # 3.10 fallback must not consume following lines as an array
        spec = grid_spec(
            name="bracketed",
            description="warmup in [0, 1) as usual",
            workloads=["uniform"],
            sizes_mb=[1],
            techniques=["baseline"],
        )
        text = spec.to_toml()
        assert ExperimentSpec.from_dict(parse_toml_minimal(text)) == spec

    def test_toml_emitter_escapes_strings(self):
        spec = grid_spec(
            name="quoted",
            description='has "quotes" and a \\ backslash # not a comment',
            workloads=["uniform"],
            sizes_mb=[1],
            techniques=["baseline"],
        )
        for parse in (loads_toml, parse_toml_minimal):
            assert (
                ExperimentSpec.from_dict(parse(spec.to_toml())) == spec
            ), parse.__name__


class TestSpecValidation:
    def test_unknown_sections_rejected(self):
        with pytest.raises(SpecError, match="unknown spec sections"):
            ExperimentSpec.from_dict({"name": "x", "axis": {}})

    def test_format_version_checked(self):
        data = _custom_spec().to_dict()
        data["format"] = 99
        with pytest.raises(SpecError, match="unsupported spec format"):
            ExperimentSpec.from_dict(data)

    def test_partial_grid_rejected(self):
        with pytest.raises(SpecError, match="all three axes"):
            grid_spec("x", ["uniform"], [], ["baseline"])

    def test_empty_spec_rejected(self):
        with pytest.raises(SpecError, match="no grid axes and no explicit"):
            ExperimentSpec(name="hollow")

    def test_bad_sizes_rejected(self):
        with pytest.raises(SpecError, match="positive integers"):
            grid_spec("x", ["uniform"], [0], ["baseline"])
        with pytest.raises(SpecError, match="positive integers"):
            grid_spec("x", ["uniform"], [True], ["baseline"])

    def test_unknown_run_keys_rejected(self):
        with pytest.raises(SpecError, match=r"unknown \[run\] keys"):
            grid_spec(
                "x", ["uniform"], [1], ["baseline"], run={"speed": 11}
            )

    def test_bad_skip_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown skip keys"):
            grid_spec(
                "x", ["uniform"], [1], ["baseline"],
                skip=({"benchmark": "uniform"},),
            )

    def test_point_missing_fields_rejected(self):
        with pytest.raises(SpecError, match="missing 'technique'"):
            ExperimentSpec(
                name="x",
                points=({"workload": "uniform", "size_mb": 1},),
            )

    def test_point_bad_values_rejected_at_validate_time(self):
        # invalid values must fail validation, not blow up later inside
        # expand() (the CLI prints INVALID from the validate path)
        def point_spec(**entry):
            base = {"workload": "uniform", "size_mb": 1,
                    "technique": "baseline"}
            base.update(entry)
            return ExperimentSpec(name="x", points=(base,))

        with pytest.raises(SpecError, match="size_mb must be a positive"):
            point_spec(size_mb=0)
        with pytest.raises(SpecError, match="size_mb must be a positive"):
            point_spec(size_mb="big")
        with pytest.raises(SpecError, match="workload must be a name"):
            point_spec(workload="")
        with pytest.raises(SpecError, match="n_cores must be a positive"):
            point_spec(n_cores=0)
        with pytest.raises(SpecError, match="scale must be positive"):
            point_spec(scale=-1)
        with pytest.raises(SpecError, match=r"warmup must be in \[0, 1\)"):
            point_spec(warmup=1.0)

    def test_bad_technique_table_rejected(self):
        with pytest.raises(SpecError, match="techniques.broken"):
            ExperimentSpec.from_dict(
                {
                    "name": "x",
                    "axes": {
                        "workloads": ["uniform"],
                        "sizes_mb": [1],
                        "techniques": ["broken"],
                    },
                    "techniques": {"broken": {"name": "warp-drive"}},
                }
            )

    def test_strict_checks_workloads_and_labels(self):
        spec = grid_spec("x", ["no_such_workload"], [1], ["baseline"])
        with pytest.raises(SpecError, match="unknown workload"):
            spec.validate(strict=True)
        spec = grid_spec("x", ["uniform"], [1], ["decay9000K"])
        with pytest.raises(SpecError, match="unknown technique label"):
            spec.validate(strict=True)

    def test_invalid_toml_and_json_rejected(self):
        with pytest.raises(SpecError, match="invalid"):
            ExperimentSpec.from_toml("name = [unterminated")
        with pytest.raises(SpecError, match="invalid JSON"):
            ExperimentSpec.from_json("{not json")


class TestExpansion:
    def test_grid_order_and_skip(self):
        spec = _custom_spec()
        points = spec.expand(scale=0.05)
        triples = [p.triple for p in points]
        # sizes outermost, workloads, techniques; pingpong@4MB skipped;
        # the explicit streaming point appended last
        assert triples == [
            ("uniform", 1, "baseline"),
            ("uniform", 1, "decay24K"),
            ("pingpong", 1, "baseline"),
            ("pingpong", 1, "decay24K"),
            ("uniform", 4, "baseline"),
            ("uniform", 4, "decay24K"),
            ("streaming", 2, "decay24K"),
        ]
        assert points[-1].n_cores == 8

    def test_custom_technique_cycles_are_literal(self):
        # spec-local technique tables are never scale-multiplied
        spec = _custom_spec()
        points = spec.expand(scale=0.05)
        decay = [p for p in points if p.tech_label == "decay24K"]
        assert all(p.technique.decay_cycles == 24_000 for p in decay)
        assert all(
            p.technique.counter_mode == "hierarchical" for p in decay
        )

    def test_paper_labels_are_scaled(self):
        spec = grid_spec("x", ["uniform"], [1], ["decay512K"])
        (p,) = spec.expand(scale=0.1)
        assert p.technique.decay_cycles == 51_200
        assert p.tech_label == "decay512K"

    def test_resolve_technique_precedence(self):
        custom = {"decay512K": TechniqueConfig(name="decay", decay_cycles=7)}
        assert resolve_technique("decay512K", 1.0, custom).decay_cycles == 7
        assert resolve_technique("decay512K", 1.0).decay_cycles == 512_000

    def test_context_merging(self):
        spec = _custom_spec()
        assert spec.context() == {"scale": 0.05, "seed": 7}
        # explicit values beat the spec, None defers to it
        assert spec.context(scale=0.2, seed=None) == {"scale": 0.2, "seed": 7}


class TestShippedSpecs:
    def test_paper_matrix_file_matches_programmatic(self):
        on_disk = load_spec(os.path.join(SPECS_DIR, "paper_matrix.toml"))
        assert on_disk == paper_matrix_spec()

    def test_paper_matrix_expands_to_the_192_point_matrix(self):
        spec = load_spec(os.path.join(SPECS_DIR, "paper_matrix.toml"))
        runner = SweepRunner(scale=0.1, cache_dir=None, verbose=False)
        points = runner.expand_spec(spec)
        assert len(points) == 192
        legacy = runner.points_for(
            PAPER_BENCHMARKS,
            PAPER_TOTAL_L2_MB,
            ["baseline", *paper_technique_order()],
        )
        assert points == legacy

    def test_shipped_specs_validate_strictly(self):
        # specs/ also ships trace fixtures (specs/traces/); only the
        # spec files themselves are loadable
        names = [
            n
            for n in sorted(os.listdir(SPECS_DIR))
            if n.endswith((".toml", ".json"))
        ]
        assert names
        for name in names:
            spec = load_spec(os.path.join(SPECS_DIR, name))
            spec.validate(strict=True)
            assert spec.expand(scale=0.1)


class TestRunnerIntegration:
    def test_run_spec_matches_sweep(self, tmp_path):
        runner = SweepRunner(
            scale=0.04, cache_dir=str(tmp_path / "cache"), verbose=False
        )
        spec = grid_spec(
            "tiny", ["uniform"], [1], ["baseline", "protocol"]
        )
        by_spec = runner.run_spec(spec)
        by_grid = runner.sweep(
            benchmarks=["uniform"], sizes=[1],
            techniques=["baseline", "protocol"],
        )
        assert by_spec == by_grid

    def test_expand_spec_uses_runner_scale(self):
        runner = SweepRunner(scale=0.05, cache_dir=None, verbose=False)
        spec = grid_spec("x", ["uniform"], [1], ["decay64K"])
        (p,) = runner.expand_spec(spec)
        assert p.technique == runner.technique_configs()["decay64K"]

    def test_point_with_override_runs(self, tmp_path):
        # an 8-core off-grid point simulates and caches under its own key
        runner = SweepRunner(
            scale=0.04, cache_dir=str(tmp_path / "cache"), verbose=False
        )
        point = replace(runner.point("uniform", 1, "protocol"), n_cores=2)
        res, energy = runner.run_point(point)
        assert len(res.cores) == 2
        assert runner.lookup(point) is not None
        assert runner.lookup(runner.point("uniform", 1, "protocol")) is None


class TestNonBareTechniqueLabels:
    """Labels like ``decay@16K`` must survive the TOML round trip.

    The emitter used to write them unquoted in ``[techniques.<label>]``
    headers, producing invalid TOML that tomllib rejected on replay
    (exactly what ``examples/decay_tuning.py --save`` generates).
    """

    @staticmethod
    def _spec_with_odd_labels() -> ExperimentSpec:
        return ExperimentSpec(
            name="odd_labels",
            workloads=("uniform",),
            sizes_mb=(1,),
            techniques=("baseline", "decay@16K", "sel decay.v2"),
            custom_techniques={
                "decay@16K": TechniqueConfig(name="decay", decay_cycles=16_000),
                "sel decay.v2": TechniqueConfig(
                    name="selective_decay", decay_cycles=64_000
                ),
            },
        )

    def test_toml_roundtrip_quotes_headers(self, tmp_path):
        spec = self._spec_with_odd_labels()
        path = str(tmp_path / "odd.toml")
        save_spec(spec, path)
        text = open(path).read()
        assert '[techniques."decay@16K"]' in text
        assert '[techniques."sel decay.v2"]' in text
        assert load_spec(path) == spec

    def test_minimal_parser_agrees_on_quoted_headers(self):
        text = self._spec_with_odd_labels().to_toml()
        assert parse_toml_minimal(text) == loads_toml(text)

    def test_quoted_key_with_dot_is_one_part(self):
        doc = parse_toml_minimal('[techniques."a.b"]\nx = 1\n')
        assert doc == {"techniques": {"a.b": {"x": 1}}}
