"""Harness: metrics, sweep runner caching, figure rendering, CLI."""

import os

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.figures import FigureTable, run_experiment, table1
from repro.harness.metrics import PointMetrics
from repro.harness.runner import SweepRunner

SCALE = 0.04


@pytest.fixture
def runner(tmp_path):
    return SweepRunner(scale=SCALE, cache_dir=str(tmp_path / "cache"),
                       verbose=False)


class TestRunnerCaching:
    def test_cache_roundtrip(self, runner, tmp_path):
        point = runner.point("uniform", 1, "baseline")
        r1, e1 = runner.run_point(point)
        assert runner.cache.stats().entries == 1
        # a fresh runner must reload the same point from disk
        fresh = SweepRunner(scale=SCALE, cache_dir=str(tmp_path / "cache"),
                            verbose=False)
        r2, e2 = fresh.run_point(point)
        assert r2.total_cycles == r1.total_cycles
        assert e2.total == pytest.approx(e1.total)

    def test_memo_serves_repeat_lookups(self, runner):
        point = runner.point("uniform", 1, "baseline")
        r1, _ = runner.run_point(point)
        r2, _ = runner.run_point(point)
        assert r2 is r1  # in-process memo, no reload

    def test_cache_key_separates_techniques(self, runner, tmp_path):
        runner.run_point(runner.point("uniform", 1, "baseline"))
        runner.run_point(runner.point("uniform", 1, "protocol"))
        assert runner.cache.stats().entries == 2

    def test_cache_entries_are_sharded_under_version_dir(self, runner,
                                                         tmp_path):
        point = runner.point("uniform", 1, "baseline")
        runner.run_point(point)
        from repro.harness.runner import CACHE_VERSION

        assert os.listdir(tmp_path / "cache") == [f"v{CACHE_VERSION}"]
        key = runner.point_key(point)
        assert os.path.exists(runner.cache.path_for(key))

    def test_technique_configs_cover_paper(self, runner):
        techs = runner.technique_configs()
        assert len(techs) == 8  # baseline + 7
        assert techs["decay64K"].decay_cycles == int(64_000 * SCALE)

    def test_technique_configs_memoized(self, runner):
        # point_key sits on the cache hot path; the table must not be
        # rebuilt (8 TechniqueConfig constructions) per lookup
        assert runner.technique_configs() is runner.technique_configs()

    def test_metrics_for(self, runner):
        m = runner.metrics_for(runner.point("uniform", 1, "protocol"))
        assert isinstance(m, PointMetrics)
        assert m.ipc_loss == pytest.approx(0.0, abs=1e-9)
        assert 0 <= m.occupancy <= 1

    def test_averaged(self, runner):
        pts = [runner.metrics_for(runner.point("uniform", 1, "protocol")),
               runner.metrics_for(runner.point("pingpong", 1, "protocol"))]
        avg = runner.averaged(pts, "occupancy")
        assert (1, "protocol") in avg
        expected = (pts[0].occupancy + pts[1].occupancy) / 2
        assert avg[(1, "protocol")] == pytest.approx(expected)

    def test_point_override_separates_cache_keys(self, runner):
        # an override equal to the runner default shares the cache key;
        # a different override gets its own entry
        from dataclasses import replace

        point = runner.point("uniform", 1, "baseline")
        same = replace(point, n_cores=runner.n_cores)
        other = replace(point, n_cores=8)
        assert runner.point_key(same) == runner.point_key(point)
        assert runner.point_key(other) != runner.point_key(point)


class TestRunnerRejectsTriples:
    """The deprecated (workload, total_mb, technique) shims are gone."""

    def test_run_point_requires_a_sweep_point(self, runner):
        with pytest.raises(TypeError):
            runner.run_point("uniform", 1, "protocol")

    def test_point_key_requires_a_sweep_point(self, runner):
        with pytest.raises(TypeError):
            runner.point_key("uniform", 1, "protocol")


class TestFigureTable:
    def test_render_contains_cells(self):
        t = FigureTable("figX", "demo", ["a", "b"])
        t.add_row("r1", ["1%", "2%"])
        out = t.render()
        assert "figX" in out and "r1" in out and "2%" in out

    def test_row_length_checked(self):
        t = FigureTable("figX", "demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("r1", ["only-one"])

    def test_table1_static(self):
        out = table1().render()
        assert "invalidate the upper level" in out
        assert "pending write" in out

    @pytest.mark.slow
    def test_fig_on_reduced_matrix(self, runner):
        t = run_experiment(
            "fig3a", runner,
            sizes=[1], benchmarks=["uniform", "pingpong"])
        out = t.render()
        assert "protocol" in out and "decay64K" in out and "1MB" in out

    def test_unknown_experiment(self, runner):
        with pytest.raises(ValueError):
            run_experiment("fig9z", runner)


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5a" in out and "water_ns" in out

    def test_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        assert "Turn off" in capsys.readouterr().out

    def test_point(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = cli_main(["point", "uniform", "1", "protocol",
                       "--scale", str(SCALE), "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "occupancy" in out

    def test_point_usage_error(self, capsys):
        assert cli_main(["point", "uniform"]) == 2

    def test_unknown_command(self, capsys):
        assert cli_main(["frobnicate"]) == 2
