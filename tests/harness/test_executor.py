"""Parallel sweep executor: planning, equality with the serial runner."""

import os

import pytest

from repro.harness.executor import (
    ParallelSweepRunner,
    resolve_jobs,
)
from repro.harness.runner import SweepRunner

SCALE = 0.04
#: 2 workloads x 1 size x 2 techniques (+2 baseline twins) = 6 simulations
MATRIX = dict(
    benchmarks=["uniform", "pingpong"],
    sizes=[1],
    techniques=["protocol", "decay64K"],
)


class TestPlanning:
    def test_baselines_scheduled_first(self):
        runner = ParallelSweepRunner(scale=SCALE, cache_dir=None, jobs=1)
        plan = runner.plan(
            ["uniform", "pingpong"], [1, 4], ["protocol", "decay64K"]
        )
        n_base = 4  # 2 workloads x 2 sizes
        assert all(p.tech_label == "baseline" for p in plan[:n_base])
        assert all(p.tech_label != "baseline" for p in plan[n_base:])
        assert len(plan) == n_base + 8

    def test_plan_deduplicates(self):
        runner = ParallelSweepRunner(scale=SCALE, cache_dir=None, jobs=1)
        plan = runner.plan(["uniform"], [1], ["baseline", "protocol", "protocol"])
        assert plan == [
            runner.point("uniform", 1, "baseline"),
            runner.point("uniform", 1, "protocol"),
        ]

    def test_plan_points_covers_baseline_twins(self):
        # a point-list plan must schedule the baseline twin of every
        # point even when the spec never listed baseline
        runner = ParallelSweepRunner(scale=SCALE, cache_dir=None, jobs=1)
        point = runner.point("uniform", 2, "decay64K")
        plan = runner.plan_points([point])
        assert plan == [point.baseline_twin(), point]

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) == max(1, os.cpu_count() or 1)
        assert resolve_jobs(0) == max(1, os.cpu_count() or 1)
        assert resolve_jobs(-2) == max(1, os.cpu_count() or 1)


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    """The MATRIX swept by the serial runner (module-shared)."""
    runner = SweepRunner(
        scale=SCALE,
        cache_dir=str(tmp_path_factory.mktemp("serial") / "cache"),
        verbose=False,
    )
    return runner, runner.sweep(**MATRIX)


@pytest.fixture(scope="module")
def parallel_run(tmp_path_factory):
    """The same MATRIX swept on a 2-worker pool (module-shared)."""
    runner = ParallelSweepRunner(
        scale=SCALE,
        cache_dir=str(tmp_path_factory.mktemp("parallel") / "cache"),
        verbose=False,
        jobs=2,
    )
    return runner, runner.sweep(**MATRIX)


class TestSerialParallelEquality:
    def test_pool_matches_serial(self, serial_run, parallel_run):
        assert parallel_run[1] == serial_run[1]

    def test_inline_path_matches_serial(self, serial_run):
        # jobs=1 takes the no-pool fast path
        runner = ParallelSweepRunner(
            scale=SCALE, cache_dir=None, jobs=1, verbose=False
        )
        metrics = runner.sweep(
            benchmarks=["uniform"], sizes=[1], techniques=["protocol"]
        )
        expected = [
            m for m in serial_run[1]
            if m.workload == "uniform" and m.technique == "protocol"
        ]
        assert metrics == expected

    def test_cache_files_byte_identical_to_serial(self, serial_run,
                                                  parallel_run):
        s_entries = dict(serial_run[0].cache.iter_entries())
        p_entries = dict(parallel_run[0].cache.iter_entries())
        assert set(s_entries) == set(p_entries)
        assert len(s_entries) == 6
        for key, s_path in s_entries.items():
            with open(s_path, "rb") as fh:
                s_bytes = fh.read()
            with open(p_entries[key], "rb") as fh:
                p_bytes = fh.read()
            assert s_bytes == p_bytes, f"cache blob differs for {key}"


class TestPrefetch:
    def test_prefetch_fully_cached_is_free(self, parallel_run):
        # a fresh runner over an already-populated cache simulates nothing
        fresh = ParallelSweepRunner(
            scale=SCALE,
            cache_dir=parallel_run[0].cache_dir,
            verbose=False,
            jobs=2,
        )
        assert fresh.prefetch(**MATRIX) == 0
        # and the memo now serves metrics without touching the pool
        assert fresh.sweep(**MATRIX) == parallel_run[1]

    def test_prefetch_counts_pending_points(self, parallel_run):
        runner = parallel_run[0]
        assert runner.prefetch(**MATRIX) == 0  # memoized
        # one new technique point over the same baselines: exactly 2 sims
        # would be pending (pingpong+uniform x sel_decay64K)
        plan = runner.plan(
            MATRIX["benchmarks"], MATRIX["sizes"], ["sel_decay64K"]
        )
        pending = [p for p in plan if runner.lookup(p) is None]
        assert len(pending) == 2

    def test_corrupt_cache_entry_resimulated(self, serial_run):
        runner, _ = serial_run
        point = runner.point("uniform", 1, "protocol")
        res, _ = runner.run_point(point)
        key = runner.point_key(point)
        with open(runner.cache.path_for(key), "w") as fh:
            fh.write('{"result": {"trunc')
        fresh = SweepRunner(
            scale=SCALE, cache_dir=runner.cache_dir, verbose=False
        )
        res2, _ = fresh.run_point(point)
        assert res2.total_cycles == res.total_cycles
        # and the repaired entry is back on disk
        assert fresh.cache.get(key) is not None
