"""Chaos tests: injected faults must converge byte-identically to serial.

Every scenario here follows the same shape: script exactly one failure
with a :class:`~repro.harness.faults.FaultPlan`, run a distributed sweep
through it, and assert (a) the sweep still completes and (b) the result
cache blobs carry the same sha256 digests as a serial sweep of the same
points.  Determinism of the points plus idempotent installation is what
makes that a fair test — any divergence is a real fault-tolerance bug,
not scheduling noise.
"""

import hashlib
import json
import os
import socket as socket_mod
import threading
import time

import pytest

from repro.harness.backends import (
    BatchQueueBackend,
    SocketWorkStealingBackend,
)
from repro.harness.backends.lease import (
    claim_lease,
    lease_path,
    read_events,
    release_lease,
    renew_lease,
)
from repro.harness.backends.batch import run_batch_worker, write_task_file
from repro.harness.backends.socket_ws import (
    PROTO_VERSION,
    _TaskServer,
    worker_main,
)
from repro.harness.campaign import read_report
from repro.harness.executor import ParallelSweepRunner
from repro.harness.faults import (
    FaultAction,
    FaultInjector,
    FaultPlan,
    backoff_seconds,
)
from repro.harness.runner import SweepRunner
from repro.harness.spec import SweepPoint

SCALE = 0.04
#: the serial reference matrix (superset of every chaos run below)
MATRIX = dict(
    benchmarks=["uniform", "pingpong"], sizes=[1], techniques=["protocol"]
)
#: the matrix most chaos runs use: 1 workload -> baseline + protocol
SMALL = dict(benchmarks=["uniform"], sizes=[1], techniques=["protocol"])


def _sha_blobs(runner):
    """Map of cache key -> sha256 of the raw entry bytes."""
    out = {}
    for key, path in runner.cache.iter_entries():
        with open(path, "rb") as fh:
            out[key] = hashlib.sha256(fh.read()).hexdigest()
    return out


def _assert_byte_identical(serial_runner, chaos_runner):
    """Every blob the chaos run produced matches the serial digest."""
    serial = _sha_blobs(serial_runner)
    chaos = _sha_blobs(chaos_runner)
    assert chaos, "chaos run produced no cache entries"
    for key, digest in chaos.items():
        assert serial.get(key) == digest, f"blob diverged for {key}"


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    """The MATRIX swept serially: the byte-identity reference."""
    runner = SweepRunner(
        scale=SCALE,
        cache_dir=str(tmp_path_factory.mktemp("serial") / "cache"),
        verbose=False,
    )
    return runner, runner.sweep(**MATRIX)


def _socket_sweep(tmp_path, plan, lease_timeout, matrix=SMALL, **kw):
    """One socket sweep under a fault plan; returns (runner, backend)."""
    backend = SocketWorkStealingBackend(
        spawn_workers=2,
        timeout=600,
        lease_timeout=lease_timeout,
        fault_plan=plan,
        **kw,
    )
    runner = ParallelSweepRunner(
        scale=SCALE,
        cache_dir=str(tmp_path / "cache"),
        verbose=False,
        backend=backend,
    )
    runner.sweep(**matrix)
    return runner, backend


def _batch_sweep(tmp_path, plan, lease_timeout, matrix=SMALL):
    """One batch sweep under a fault plan; returns (runner, backend)."""
    backend = BatchQueueBackend(
        queue_dir=str(tmp_path / "queue"),
        spawn_workers=2,
        timeout=600,
        lease_timeout=lease_timeout,
        fault_plan=plan,
    )
    runner = ParallelSweepRunner(
        scale=SCALE,
        cache_dir=str(tmp_path / "cache"),
        verbose=False,
        backend=backend,
    )
    runner.sweep(**matrix)
    return runner, backend


class TestFaultPlan:
    def test_roundtrips_through_dict_and_json(self):
        plan = (
            FaultPlan(seed=7)
            .kill("w0", on_task=2)
            .hang("w1", seconds=1.5)
            .corrupt("w1", on_task=3)
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert bool(plan) and not bool(FaultPlan())

    def test_rejects_bad_kind_and_ordinal(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultAction("melt", "w0")
        with pytest.raises(ValueError, match="1-based"):
            FaultAction("kill", "w0", on_task=0)

    def test_injector_fires_once_at_the_scripted_ordinal(self):
        plan = FaultPlan().kill("w0", on_task=2).delay("w0", on_task=3)
        inj = FaultInjector(plan.to_dict(), "w0")
        assert inj.on_task() is None  # task 1
        assert inj.on_delivery() is None
        action = inj.on_task()  # task 2
        assert action is not None and action.kind == "kill"
        assert inj.on_task() is None  # task 3 receipt seam is clean...
        delivery = inj.on_delivery()  # ...the delay is on delivery
        assert delivery is not None and delivery.kind == "delay"
        assert inj.on_delivery() is None  # fires at most once

    def test_injector_ignores_other_workers(self):
        plan = FaultPlan().kill("w0")
        inj = FaultInjector(plan, "w1")
        assert inj.on_task() is None

    def test_backoff_is_capped_deterministic_and_jittered(self):
        assert backoff_seconds(0, base=0.1, cap=2.0) == pytest.approx(0.1)
        assert backoff_seconds(50, base=0.1, cap=2.0) == pytest.approx(2.0)
        import random

        a = backoff_seconds(3, rng=random.Random("w:3"))
        b = backoff_seconds(3, rng=random.Random("w:3"))
        assert a == b  # same seed, same advice
        raw = backoff_seconds(3)
        assert 0.5 * raw <= a < 1.5 * raw


class TestLeaseFiles:
    def test_fresh_claim_is_exclusive(self, tmp_path):
        q = str(tmp_path)
        assert claim_lease(q, "k1", "w0", 60.0) == "fresh"
        assert claim_lease(q, "k1", "w1", 60.0) is None
        release_lease(q, "k1", "w0")
        assert claim_lease(q, "k1", "w1", 60.0) == "fresh"

    def test_own_live_lease_reenters_as_fresh(self, tmp_path):
        q = str(tmp_path)
        assert claim_lease(q, "k1", "w0", 60.0) == "fresh"
        assert claim_lease(q, "k1", "w0", 60.0) == "fresh"

    def test_stale_lease_is_reclaimed(self, tmp_path):
        q = str(tmp_path)
        assert claim_lease(q, "k1", "w0", 60.0) == "fresh"
        old = time.time() - 100.0
        os.utime(lease_path(q, "k1"), (old, old))
        assert claim_lease(q, "k1", "w1", 5.0) == "reclaimed"

    def test_renew_and_release_require_ownership(self, tmp_path):
        q = str(tmp_path)
        claim_lease(q, "k1", "w0", 60.0)
        assert renew_lease(q, "k1", "w0")
        assert not renew_lease(q, "k1", "w1")
        release_lease(q, "k1", "w1")  # not the holder: must be a no-op
        assert renew_lease(q, "k1", "w0")


class TestSocketChaos:
    def test_killed_worker_point_migrates(self, serial_run, tmp_path):
        plan = FaultPlan(seed=3).kill("local-0", on_task=1)
        runner, backend = _socket_sweep(tmp_path, plan, lease_timeout=60.0)
        _assert_byte_identical(serial_run[0], runner)
        assert backend.last_stats["requeued"] >= 1
        assert backend.last_report.eventful

    def test_hung_worker_lease_expires_and_sweep_completes(
        self, serial_run, tmp_path
    ):
        # the worker wedges forever while its TCP connection stays up:
        # only lease expiry (not EOF) can free its point, and the sweep
        # must finish roughly one lease window after the hang
        lease = 1.0
        plan = FaultPlan(seed=3).hang("local-0", on_task=1, seconds=0.0)
        start = time.monotonic()
        runner, backend = _socket_sweep(tmp_path, plan, lease_timeout=lease)
        elapsed = time.monotonic() - start
        _assert_byte_identical(serial_run[0], runner)
        assert backend.last_stats["expired"] >= 1
        assert backend.last_stats["heartbeats"] >= 1
        assert any(
            "lease expired" in reason
            for record in backend.last_report.records
            for reason in record.reasons
        )
        # epsilon covers process spawn, the simulations themselves, and
        # teardown of the wedged worker — generous for loaded CI hosts
        assert elapsed < lease + 45.0

    def test_corrupt_result_is_rejected_and_requeued(
        self, serial_run, tmp_path
    ):
        plan = FaultPlan(seed=3).corrupt("local-0", on_task=1)
        runner, backend = _socket_sweep(tmp_path, plan, lease_timeout=60.0)
        _assert_byte_identical(serial_run[0], runner)
        assert backend.last_stats["rejected"] >= 1
        assert backend.last_stats["requeued"] >= 1
        assert any(
            "corrupt result payload" in reason
            for record in backend.last_report.records
            for reason in record.reasons
        )

    def test_duplicate_delivery_is_idempotent(self, serial_run, tmp_path):
        plan = FaultPlan(seed=3).duplicate("local-0", on_task=1)
        runner, backend = _socket_sweep(tmp_path, plan, lease_timeout=60.0)
        _assert_byte_identical(serial_run[0], runner)
        assert backend.last_stats["duplicates"] == 1

    def test_slow_delivery_survives_on_heartbeats(self, serial_run, tmp_path):
        # a delay much longer than the lease, with the heartbeat pump
        # alive: the lease must be carried, never expired
        plan = FaultPlan(seed=3).delay("local-0", on_task=1, seconds=2.5)
        runner, backend = _socket_sweep(tmp_path, plan, lease_timeout=1.0)
        _assert_byte_identical(serial_run[0], runner)
        assert backend.last_stats["expired"] == 0
        assert backend.last_stats["requeued"] == 0
        assert backend.last_stats["heartbeats"] >= 1

    def test_campaign_report_published_next_to_manifest(
        self, serial_run, tmp_path
    ):
        plan = FaultPlan(seed=3).kill("local-0", on_task=1)
        runner, backend = _socket_sweep(tmp_path, plan, lease_timeout=60.0)
        report = read_report(runner.cache.version_dir())
        assert report is not None
        assert report.backend == "socket"
        assert report.completed == report.total == 2
        assert report.eventful == backend.last_report.eventful

    def test_welcome_carries_lease_protocol_fields(self, tmp_path):
        runner = SweepRunner(scale=SCALE, cache_dir=None, verbose=False)
        point = runner.point("uniform", 1, "protocol")
        server = _TaskServer(
            ("127.0.0.1", 0), runner, [point], lease_timeout=7.0
        )
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            port = server.server_address[1]
            with socket_mod.create_connection(("127.0.0.1", port), 10) as s:
                fh = s.makefile("rwb")
                fh.write(b'{"op": "hello", "worker": "probe"}\n')
                fh.flush()
                welcome = json.loads(fh.readline())
        finally:
            server.shutdown()
            server.server_close()
        assert welcome["op"] == "welcome"
        assert welcome["proto"] == PROTO_VERSION == 3
        assert welcome["lease_timeout"] == 7.0
        assert welcome["heartbeat_interval"] == pytest.approx(7.0 / 4.0)


def _serve_one_task_then_die(port_queue, scale, point_dicts):
    """Child-process coordinator that hard-exits after serving one task.

    Exiting the process (not just the server loop) closes every socket
    it owns — the honest simulation of a coordinator host dying.
    """
    runner = SweepRunner(scale=scale, cache_dir=None, verbose=False)
    points = [SweepPoint.from_dict(d) for d in point_dicts]
    server = _TaskServer(("127.0.0.1", 0), runner, points, lease_timeout=30.0)
    port_queue.put(server.server_address[1])
    threading.Thread(target=server.serve_forever, daemon=True).start()
    for _ in range(6000):
        if server.stats["served"] >= 1:
            break
        time.sleep(0.01)
    os._exit(0)


class TestCoordinatorRestart:
    def test_worker_reconnects_to_a_restarted_coordinator(
        self, serial_run, tmp_path
    ):
        import multiprocessing

        src_runner, _ = serial_run
        points = [
            src_runner.point("uniform", 1, "baseline"),
            src_runner.point("uniform", 1, "protocol"),
        ]
        port_queue = multiprocessing.Queue()
        first = multiprocessing.Process(
            target=_serve_one_task_then_die,
            args=(port_queue, SCALE, [p.to_dict() for p in points]),
            daemon=True,
        )
        first.start()
        port = port_queue.get(timeout=60)

        outcome = {}

        def pull() -> None:
            outcome["rc"] = worker_main(
                "127.0.0.1", port, worker_name="w", connect_attempts=30
            )

        worker = threading.Thread(target=pull, daemon=True)
        worker.start()
        first.join(timeout=120)  # dies mid-sweep, severing the connection
        assert not first.is_alive()

        runner2 = SweepRunner(
            scale=SCALE, cache_dir=str(tmp_path / "cache"), verbose=False
        )
        server2 = _TaskServer(
            ("127.0.0.1", port), runner2, points, lease_timeout=60.0
        )
        threading.Thread(target=server2.serve_forever, daemon=True).start()
        try:
            assert server2.finished.wait(180), "restarted sweep never finished"
        finally:
            server2.shutdown()
            server2.server_close()
        worker.join(timeout=60)
        assert outcome.get("rc") == 0  # the same worker finished the job
        assert server2.stats["served"] >= 2
        _assert_byte_identical(src_runner, runner2)


class TestBatchChaos:
    def test_killed_worker_lease_is_reclaimed(self, serial_run, tmp_path):
        plan = FaultPlan(seed=3).kill("batch-0", on_task=1)
        runner, backend = _batch_sweep(tmp_path, plan, lease_timeout=0.5)
        _assert_byte_identical(serial_run[0], runner)
        assert backend.last_report.stats["reclaimed"] >= 1
        assert any(
            "stale lease reclaimed" in reason
            for record in backend.last_report.records
            for reason in record.reasons
        )

    def test_hung_worker_lease_goes_stale_and_migrates(
        self, serial_run, tmp_path
    ):
        # the worker sleeps through its claim without renewing: the
        # survivor must reclaim, and the sleeper must wake into a world
        # where its point is already settled (the hang is much longer
        # than survivor-sim + lease so the reclaim always wins the race)
        plan = FaultPlan(seed=3).hang("batch-0", on_task=1, seconds=10.0)
        runner, backend = _batch_sweep(tmp_path, plan, lease_timeout=0.5)
        _assert_byte_identical(serial_run[0], runner)
        assert backend.last_report.stats["reclaimed"] >= 1

    def test_dropped_claim_is_retaken(self, serial_run, tmp_path):
        plan = FaultPlan(seed=3).drop("batch-0", on_task=1)
        runner, backend = _batch_sweep(tmp_path, plan, lease_timeout=60.0)
        _assert_byte_identical(serial_run[0], runner)
        # the abandoned claim cost one extra claim event, nothing else
        assert backend.last_report.stats["claims"] >= 3
        assert backend.last_report.stats["completions"] >= 2

    def test_single_worker_reclaims_a_dead_strangers_lease(
        self, serial_run, tmp_path
    ):
        # unit-level reclaim: a lease left behind by a dead worker (old
        # mtime, no process) must not block a later worker
        src_runner, _ = serial_run
        queue_dir = str(tmp_path / "queue")
        params = SweepRunner(
            scale=SCALE, cache_dir=None, verbose=False
        ).runner_params()
        point = src_runner.point("uniform", 1, "protocol")
        write_task_file(queue_dir, params, [point])
        key = src_runner.point_key(point)
        assert claim_lease(queue_dir, key, "dead-worker", 60.0) == "fresh"
        old = time.time() - 100.0
        os.utime(lease_path(queue_dir, key), (old, old))

        done = run_batch_worker(queue_dir, "survivor", lease_timeout=5.0)
        assert done == 1
        events = read_events(queue_dir)
        assert any(
            e.get("event") == "claim" and e.get("kind") == "reclaimed"
            for e in events
        )
        assert any(e.get("event") == "complete" for e in events)


class TestResume:
    def test_partition_cached_splits_planned_points(
        self, serial_run, tmp_path
    ):
        src_runner, _ = serial_run
        points = [
            src_runner.point("uniform", 1, "baseline"),
            src_runner.point("uniform", 1, "protocol"),
        ]
        cached, missing = src_runner.partition_cached(points)
        assert cached == points and missing == []
        fresh = SweepRunner(
            scale=SCALE, cache_dir=str(tmp_path / "cache"), verbose=False
        )
        cached, missing = fresh.partition_cached(points)
        assert cached == [] and missing == points
