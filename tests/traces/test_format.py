"""Wire-format tests of the ``.rtr`` trace container.

Property tests (hypothesis) pin the varint/zigzag primitives and the
full writer→reader frame round trip; the rejection tests cover bad
magic, unsupported versions, and truncation at every structural
boundary; the constant-memory test proves the streaming reader never
holds more than one decoded frame per live stream.
"""

import os
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.format import (
    FORMAT_VERSION,
    MAGIC,
    TraceError,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    decode_frame_body,
    decode_uvarint,
    encode_frame_body,
    encode_uvarint,
    unzigzag,
    zigzag,
)

uints = st.integers(min_value=0, max_value=1 << 70)
# deliberately wider than 64 bits: zigzag must be width-independent
ints = st.integers(min_value=-(1 << 70), max_value=1 << 70)
records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 20),   # gap
        st.integers(min_value=0, max_value=1 << 66),   # addr (past 2^64)
        st.integers(min_value=0, max_value=0xF),       # flags
    ),
    max_size=200,
)


class TestVarintProperties:
    @given(uints)
    def test_uvarint_round_trip(self, value):
        buf = bytearray()
        encode_uvarint(value, buf)
        decoded, end = decode_uvarint(bytes(buf), 0)
        assert decoded == value and end == len(buf)

    @given(st.lists(uints, max_size=50))
    def test_uvarint_sequences_concatenate(self, values):
        buf = bytearray()
        for v in values:
            encode_uvarint(v, buf)
        pos, out = 0, []
        while pos < len(buf):
            v, pos = decode_uvarint(bytes(buf), pos)
            out.append(v)
        assert out == values

    @given(ints)
    def test_zigzag_round_trip(self, value):
        assert unzigzag(zigzag(value)) == value
        assert zigzag(value) >= 0

    def test_zigzag_deltas_beyond_64_bits(self):
        """A 64-bit kernel address followed by a low one (delta < -2^63).

        The fixed-width ``>> 63`` sign-extension trick silently decoded
        this to a different address; the mapping must be exact for any
        magnitude.
        """
        for delta in (-(1 << 63), -(1 << 64) + 1, (1 << 64) - 1, 1 << 70):
            assert unzigzag(zigzag(delta)) == delta

    def test_uvarint_rejects_negative(self):
        with pytest.raises(TraceError):
            encode_uvarint(-1, bytearray())

    def test_truncated_varint_rejected(self):
        buf = bytearray()
        encode_uvarint(1 << 40, buf)
        with pytest.raises(TraceFormatError, match="truncated"):
            decode_uvarint(bytes(buf[:-1]), 0)


class TestFrameProperties:
    @given(records)
    def test_frame_body_round_trip(self, recs):
        body = encode_frame_body(recs)
        assert decode_frame_body(body, len(recs)) == recs

    @settings(max_examples=25)
    @given(recs=records)
    def test_file_round_trip_single_core(self, recs, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("rt") / "t.rtr")
        with TraceWriter(path, 1, {"name": "t"}, frame_records=16) as w:
            w.extend(0, recs)
        reader = TraceReader(path)
        assert list(reader.stream(0)) == recs
        assert reader.counts() == [len(recs)]

    def test_trailing_garbage_in_frame_rejected(self):
        body = encode_frame_body([(1, 2, 3)]) + b"\x00"
        with pytest.raises(TraceFormatError, match="trailing"):
            decode_frame_body(body, 1)

    def test_kernel_address_wraparound_round_trips(self):
        """The review repro: 0 → 2^64-1 → 0 must decode bit-exactly."""
        recs = [(0, (1 << 64) - 1, 0), (0, 0, 0), (0, (1 << 64) - 1, 1)]
        assert decode_frame_body(encode_frame_body(recs), len(recs)) == recs


@pytest.fixture()
def small_trace(tmp_path):
    """A 2-core trace with several frames per core."""
    path = str(tmp_path / "small.rtr")
    per_core = [
        [(i % 7, 64 * i, (i % 2)) for i in range(100)],
        [(i % 5, 1 << 20, 0x8 if i % 50 == 49 else 2) for i in range(80)],
    ]
    with TraceWriter(path, 2, {"name": "small"}, frame_records=16) as w:
        for core, recs in enumerate(per_core):
            w.extend(core, recs)
    return path, per_core


class TestMultiCore:
    def test_streams_are_per_core_and_fresh(self, small_trace):
        path, per_core = small_trace
        reader = TraceReader(path)
        for core, recs in enumerate(per_core):
            assert list(reader.stream(core)) == recs
            assert list(reader.stream(core)) == recs  # fresh iterator
        a, b = reader.streams(2)
        assert next(a) == per_core[0][0] and next(b) == per_core[1][0]

    def test_streams_checks_core_count(self, small_trace):
        path, _ = small_trace
        with pytest.raises(TraceError, match="core stream"):
            TraceReader(path).streams(4)

    def test_validate_cross_checks_trailer(self, small_trace):
        path, per_core = small_trace
        info = TraceReader(path).validate()
        assert info["counts"] == [len(r) for r in per_core]
        assert info["barriers"] == 1


class TestRejection:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rtr"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(TraceFormatError, match="bad magic"):
            TraceReader(str(path))

    def test_bad_version(self, tmp_path, small_trace):
        src, _ = small_trace
        data = bytearray(open(src, "rb").read())
        data[len(MAGIC)] = FORMAT_VERSION + 1
        path = tmp_path / "v.rtr"
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="unsupported trace version"):
            TraceReader(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot open"):
            TraceReader(str(tmp_path / "absent.rtr"))

    @pytest.mark.parametrize("keep_fraction", [0.2, 0.5, 0.9, 0.999])
    def test_truncation_at_any_point_rejected(
        self, tmp_path, small_trace, keep_fraction
    ):
        src, _ = small_trace
        data = open(src, "rb").read()
        path = tmp_path / "cut.rtr"
        path.write_bytes(data[: int(len(data) * keep_fraction)])
        reader = TraceReader(str(path))  # header may still parse
        with pytest.raises(TraceFormatError):
            for _ in reader.scan():
                pass

    def test_cut_mid_payload_reports_truncated_frame(self, tmp_path, small_trace):
        """Mid-payload truncation must name the frame, not misparse on.

        Seeking past EOF "succeeds", so the scan has to check payload
        extents against the real file size — a file cut mid-frame used
        to surface as a misleading 'truncated trailer block'.
        """
        src, _ = small_trace
        _, _, offset, payload_len = next(iter(TraceReader(src).scan()))
        path = tmp_path / "midcut.rtr"
        path.write_bytes(open(src, "rb").read()[: offset + payload_len // 2])
        with pytest.raises(TraceFormatError, match="truncated frame"):
            for _ in TraceReader(str(path)).scan():
                pass

    def test_stream_skip_path_detects_truncated_frame(self, tmp_path, small_trace):
        """Streaming core 1 over a file cut inside a core-0 frame fails."""
        src, _ = small_trace
        _, _, offset, payload_len = next(iter(TraceReader(src).scan()))
        path = tmp_path / "skipcut.rtr"
        path.write_bytes(open(src, "rb").read()[: offset + payload_len // 2])
        with pytest.raises(TraceFormatError, match="truncated"):
            list(TraceReader(str(path)).stream(1))

    def test_truncated_at_trailer_boundary(self, tmp_path, small_trace):
        """Cut exactly before the closing magic — scan must still fail."""
        src, _ = small_trace
        data = open(src, "rb").read()
        path = tmp_path / "tb.rtr"
        path.write_bytes(data[: -len(MAGIC)])
        with pytest.raises(TraceFormatError, match="closing magic"):
            TraceReader(str(path)).trailer()

    def test_trailing_bytes_after_magic_rejected(self, tmp_path, small_trace):
        src, _ = small_trace
        path = tmp_path / "tg.rtr"
        path.write_bytes(open(src, "rb").read() + b"junk")
        with pytest.raises(TraceFormatError, match="trailing bytes"):
            TraceReader(str(path)).trailer()

    def test_corrupt_payload_rejected(self, tmp_path, small_trace):
        src, _ = small_trace
        data = bytearray(open(src, "rb").read())
        # find the first zlib frame payload (after the header block) and
        # flip bytes in its middle
        reader = TraceReader(src)
        _, _, offset, payload_len = next(iter(reader.scan()))
        mid = offset + payload_len // 2
        data[mid] ^= 0xFF
        data[mid + 1] ^= 0xFF
        path = tmp_path / "corrupt.rtr"
        path.write_bytes(bytes(data))
        bad = TraceReader(str(path))
        with pytest.raises(TraceFormatError):
            bad.validate()

    def test_writer_abort_leaves_nothing(self, tmp_path):
        path = str(tmp_path / "abort.rtr")
        try:
            with TraceWriter(path, 1, {"name": "a"}):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".tmp")


class TestConstantMemory:
    def test_reader_never_buffers_more_than_one_frame(self, tmp_path):
        """Resident decode state is capped at one frame, whatever the length.

        A 1-frame-record trace of N records must never hold more than one
        record at a time; a 64-record-frame trace never more than 64 —
        the cap tracks the *frame* size, not the trace length.
        """
        for frame_records, n_records in ((1, 500), (64, 10_000)):
            path = str(tmp_path / f"cm{frame_records}.rtr")
            with TraceWriter(
                path, 1, {"name": "cm"}, frame_records=frame_records
            ) as w:
                w.extend(0, ((0, 64 * i, 0) for i in range(n_records)))
            reader = TraceReader(path)
            total = sum(1 for _ in reader.stream(0))
            assert total == n_records
            assert reader.max_resident_records <= frame_records

    def test_interleaved_streams_stay_bounded(self, small_trace):
        path, per_core = small_trace
        reader = TraceReader(path)
        a, b = reader.streams(2)
        out_a = [next(a) for _ in range(40)]
        out_b = [next(b) for _ in range(40)]
        assert out_a == per_core[0][:40] and out_b == per_core[1][:40]
        assert reader.max_resident_records <= 16  # the writer's frame size

    def test_compression_actually_compresses(self, tmp_path):
        """Sanity: sequential delta-encoded frames beat raw tuples."""
        path = str(tmp_path / "z.rtr")
        n = 20_000
        with TraceWriter(path, 1, {"name": "z"}) as w:
            w.extend(0, ((2, 64 * i, 0) for i in range(n)))
        raw_estimate = n * 12  # ~3 small ints/record uncompressed
        assert os.path.getsize(path) < raw_estimate / 2
        assert zlib  # the format depends on stdlib zlib only
