"""Spec integration, shipped trace_smoke pinning, and the trace CLI.

The shipped ``specs/trace_smoke.toml`` + ``specs/traces/uniform_smoke.rtr``
pair is pinned the way ``mix_smoke`` is: the spec document must match the
frozen form below, and the trace file must be byte-identical to a fresh
capture with its recorded parameters (captures are deterministic, so the
file is reproducible, not just readable).
"""

import json
import os

import pytest

from repro.harness.cli import main
from repro.harness.query import ResultStore
from repro.harness.spec import SpecError, load_spec
from repro.traces import TraceReader, capture_workload
from repro.workloads.registry import check_workload, workload_exists

HERE = os.path.dirname(__file__)
SPECS = os.path.join(HERE, "..", "..", "specs")
SMOKE_SPEC = os.path.join(SPECS, "trace_smoke.toml")
SMOKE_TRACE = os.path.join(SPECS, "traces", "uniform_smoke.rtr")

#: frozen canonical form of the shipped spec (update deliberately)
TRACE_SMOKE_PIN = {
    "format": 1,
    "name": "trace_smoke",
    "axes": {
        "workloads": ["trace:traces/uniform_smoke.rtr"],
        "sizes_mb": [1],
        "techniques": ["baseline", "protocol"],
    },
    "run": {"scale": 0.04, "seed": 1},
}


class TestShippedArtifacts:
    def test_trace_smoke_spec_is_pinned(self):
        spec = load_spec(SMOKE_SPEC)
        doc = spec.to_dict()
        doc.pop("description")
        assert doc == TRACE_SMOKE_PIN

    def test_trace_smoke_validates_strictly(self):
        load_spec(SMOKE_SPEC).validate(strict=True)

    def test_shipped_trace_is_reproducible(self, tmp_path):
        """Byte-identical to a fresh capture with its header's parameters."""
        header = TraceReader(SMOKE_TRACE).header
        source = header["source"]
        fresh = str(tmp_path / "fresh.rtr")
        capture_workload(
            source["workload"],
            fresh,
            n_cores=source["n_cores"],
            scale=source["scale"],
            seed=source["seed"],
            limit=source["limit"],
        )
        with open(SMOKE_TRACE, "rb") as a, open(fresh, "rb") as b:
            assert a.read() == b.read()

    def test_store_mounts_trace_spec_via_base_dir(self, tmp_path):
        """ResultStore.open inherits the spec's directory as trace_root."""
        spec = load_spec(SMOKE_SPEC)
        store = ResultStore.open(str(tmp_path / "cache"), spec)
        assert store.runner.trace_root == spec.base_dir
        assert len(store.points()) == 2


class TestSpecValidation:
    def test_missing_trace_file_is_clean_spec_error(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(
            'format = 1\nname = "bad"\n\n[axes]\n'
            'workloads = ["trace:absent.rtr"]\nsizes_mb = [1]\n'
            'techniques = ["baseline"]\n'
        )
        spec = load_spec(str(path))
        with pytest.raises(SpecError, match="trace file not found"):
            spec.validate(strict=True)

    def test_corrupt_trace_file_is_clean_spec_error(self, tmp_path):
        (tmp_path / "junk.rtr").write_bytes(b"not a trace at all")
        path = tmp_path / "bad.toml"
        path.write_text(
            'format = 1\nname = "bad"\n\n[axes]\n'
            'workloads = ["trace:junk.rtr"]\nsizes_mb = [1]\n'
            'techniques = ["baseline"]\n'
        )
        with pytest.raises(SpecError, match="bad magic"):
            load_spec(str(path)).validate(strict=True)

    def test_paths_resolve_relative_to_spec_file(self, tmp_path, monkeypatch):
        """Validation works from any cwd — base_dir anchors the path."""
        trace = str(tmp_path / "t.rtr")
        capture_workload("uniform", trace, scale=0.04, seed=1, limit=10)
        path = tmp_path / "ok.toml"
        path.write_text(
            'format = 1\nname = "ok"\n\n[axes]\n'
            'workloads = ["trace:t.rtr"]\nsizes_mb = [1]\n'
            'techniques = ["baseline"]\n'
        )
        monkeypatch.chdir(tmp_path / "..")
        load_spec(str(path)).validate(strict=True)

    def test_workload_exists_covers_traces(self, tmp_path):
        trace = str(tmp_path / "t.rtr")
        capture_workload("uniform", trace, scale=0.04, seed=1, limit=10)
        assert workload_exists(f"trace:{trace}")
        assert workload_exists(f"mix:uniform+trace:{trace}")
        assert not workload_exists("trace:absent.rtr")
        assert not workload_exists("mix:uniform+trace:absent.rtr")
        assert workload_exists(
            "trace:" + os.path.basename(trace), trace_root=str(tmp_path)
        )

    def test_check_workload_raises_with_file_name(self):
        with pytest.raises(ValueError, match="absent.rtr"):
            check_workload("trace:absent.rtr")


class TestTraceCli:
    def capture(self, out, *extra):
        rc = main(
            ["trace", "capture", "uniform", out, "--scale", "0.04",
             "--limit", "50", "--quiet", *extra]
        )
        assert rc == 0
        return out

    def test_capture_info_validate(self, tmp_path, capsys):
        out = self.capture(str(tmp_path / "u.rtr"))
        assert main(["trace", "info", out]) == 0
        text = capsys.readouterr().out
        assert "workload    uniform" in text
        assert "records     200" in text
        assert main(["trace", "validate", out]) == 0
        assert "ok (200 records" in capsys.readouterr().out

    def test_convert_csv_and_mtrace(self, tmp_path, capsys):
        log = tmp_path / "log.csv"
        log.write_text("core,addr,write\n0,0x10,0\n1,0x20,1\n")
        rc = main(["trace", "convert", str(log), str(tmp_path / "c.rtr")])
        assert rc == 0
        mt = tmp_path / "m.txt"
        mt.write_text("0 R 0x2000\n1 st 8192 5\n# comment\n")
        rc = main(
            ["trace", "convert", str(mt), str(tmp_path / "m.rtr"),
             "--trace-format", "mtrace"]
        )
        assert rc == 0
        assert main(["trace", "validate", str(tmp_path / "m.rtr")]) == 0

    def test_bad_inputs_fail_cleanly(self, tmp_path, capsys):
        assert main(["trace", "info", str(tmp_path / "absent.rtr")]) == 1
        assert "cannot open" in capsys.readouterr().err
        bad = tmp_path / "bad.rtr"
        bad.write_bytes(b"XXXX")
        assert main(["trace", "validate", str(bad)]) == 1
        assert "bad magic" in capsys.readouterr().err
        assert main(["trace"]) == 2
        assert main(["trace", "capture", "uniform"]) == 2
        assert main(["trace", "capture", "nope", str(tmp_path / "n.rtr")]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_spec_validate_reports_missing_trace(self, tmp_path, capsys):
        spec = tmp_path / "s.toml"
        spec.write_text(
            'format = 1\nname = "s"\n\n[axes]\n'
            'workloads = ["trace:absent.rtr"]\nsizes_mb = [1]\n'
            'techniques = ["baseline"]\n'
        )
        assert main(["spec", "validate", str(spec)]) == 1
        err = capsys.readouterr().err
        assert "INVALID" in err and "absent.rtr" in err and "Traceback" not in err

    def test_run_trace_smoke_spec(self, tmp_path, capsys):
        """End to end: `repro-cmp run specs/trace_smoke.toml`."""
        rc = main(
            ["run", SMOKE_SPEC, "--cache-dir", str(tmp_path / "cache"),
             "--quiet"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:traces/uniform_smoke.rtr" in out

    def test_point_command_accepts_trace_names(self, tmp_path, capsys):
        out = self.capture(str(tmp_path / "p.rtr"))
        rc = main(
            ["point", f"trace:{out}", "1", "baseline",
             "--cache-dir", str(tmp_path / "cache"), "--scale", "0.04",
             "--quiet"]
        )
        assert rc == 0
        assert "energy_reduction" in capsys.readouterr().out


class TestServedProvenance:
    def test_provenance_digest_served_for_trace_point(self, tmp_path):
        """/v1/provenance/<digest> surfaces the capture's sha256."""
        cache_dir = str(tmp_path / "cache")
        rc = main(
            ["run", SMOKE_SPEC, "--cache-dir", cache_dir, "--quiet"]
        )
        assert rc == 0
        spec = load_spec(SMOKE_SPEC)
        store = ResultStore.open(cache_dir, spec)
        digest = store.points()[0].digest()
        info = store.provenance_for_digest(digest)
        refs = info["traces"]
        ref = refs["trace:traces/uniform_smoke.rtr"]
        assert ref["file"] == os.path.abspath(SMOKE_TRACE)
        assert len(ref["sha256"]) == 64
        assert json.dumps(info)  # sidecar must stay JSON-serializable
