"""Capture-replay identity: the subsystem's correctness anchor.

A synthetic workload captured to a trace file and replayed via
``trace:<file>`` must produce **byte-identical** result blobs to the
direct generator run — through the serial runner and through
``LocalBackend`` worker processes.  The blob embeds the workload's meta
name, so identity also proves the header round-trips the source
metadata faithfully.
"""

import hashlib
import os
import re

import pytest

from repro.harness.executor import ParallelSweepRunner
from repro.harness.runner import SweepRunner
from repro.traces import TraceError, capture_workload, convert_csv
from repro.workloads.registry import get_workload

SCALE = 0.04
SEED = 1
N_CORES = 4


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    """One full capture of the uniform workload at smoke scale."""
    path = str(tmp_path_factory.mktemp("capture") / "uniform.rtr")
    capture_workload("uniform", path, n_cores=N_CORES, scale=SCALE, seed=SEED)
    return path


def make_runner(tmp_path, trace_root=None, **kwargs):
    return SweepRunner(
        scale=SCALE,
        seed=SEED,
        n_cores=N_CORES,
        cache_dir=str(tmp_path / "cache"),
        verbose=False,
        trace_root=trace_root,
        **kwargs,
    )


def blob_digest(runner, point):
    runner.run_point(point)
    key = runner.point_key(point)
    with open(runner.cache.path_for(key), "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


class TestStreamIdentity:
    def test_replay_streams_equal_generator_streams(self, capture):
        src = get_workload("uniform", n_cores=N_CORES, scale=SCALE, seed=SEED)
        rep = get_workload(f"trace:{capture}", n_cores=N_CORES)
        assert rep.meta == src.meta  # name included — blob identity needs it
        for a, b in zip(src.streams(N_CORES), rep.streams(N_CORES)):
            assert list(a) == list(b)

    def test_replay_is_repeatable(self, capture):
        rep = get_workload(f"trace:{capture}", n_cores=N_CORES)
        first = [list(s) for s in rep.streams(N_CORES)]
        second = [list(s) for s in rep.streams(N_CORES)]
        assert first == second


class TestBlobIdentity:
    def test_serial_runner_bit_identical(self, capture, tmp_path):
        """The golden: generator blob == replay blob, byte for byte."""
        gen = make_runner(tmp_path / "gen")
        rep = make_runner(tmp_path / "rep")
        for tech in ("baseline", "protocol", "decay64K"):
            p_gen = gen.point("uniform", 1, tech)
            p_rep = rep.point(f"trace:{capture}", 1, tech)
            assert blob_digest(gen, p_gen) == blob_digest(rep, p_rep), tech

    def test_local_backend_bit_identical(self, capture, tmp_path):
        """Same identity through LocalBackend worker processes (jobs=2)."""
        gen = make_runner(tmp_path / "gen")
        rep = ParallelSweepRunner(
            scale=SCALE,
            seed=SEED,
            n_cores=N_CORES,
            cache_dir=str(tmp_path / "rep" / "cache"),
            verbose=False,
            jobs=2,
        )
        points = [
            rep.point(f"trace:{capture}", 1, t) for t in ("baseline", "protocol")
        ]
        rep.prefetch_points(points)
        for point, tech in zip(points, ("baseline", "protocol")):
            direct = blob_digest(gen, gen.point("uniform", 1, tech))
            key = rep.point_key(point)
            with open(rep.cache.path_for(key), "rb") as fh:
                replayed = hashlib.sha256(fh.read()).hexdigest()
            assert replayed == direct, tech


class TestCacheKeys:
    def test_point_key_stays_one_path_component(self, capture, tmp_path):
        """Trace names carry paths; cache keys must not nest directories."""
        runner = make_runner(tmp_path)
        key = runner.point_key(runner.point(f"trace:{capture}", 1, "baseline"))
        assert "/" not in key and "\\" not in key

    def test_point_key_is_filesystem_safe_everywhere(self, capture, tmp_path):
        """No ':' (or any path-hostile char) survives — NTFS rejects them."""
        runner = make_runner(tmp_path)
        for name in (f"trace:{capture}", f"mix:pingpong+trace:{capture}"):
            key = runner.point_key(runner.point(name, 1, "baseline"))
            assert not re.search(r"[^A-Za-z0-9._+-]", key), key

    def test_recapturing_a_trace_changes_the_cache_key(self, tmp_path):
        """The key folds in trace *content*, not just the trace's name.

        Overwriting a trace at the same path used to silently serve the
        old capture's cached results.
        """
        path = str(tmp_path / "t.rtr")
        capture_workload(
            "uniform", path, n_cores=N_CORES, scale=SCALE, seed=SEED, limit=64
        )
        runner = make_runner(tmp_path)
        point = runner.point(f"trace:{path}", 1, "baseline")
        key_before = runner.point_key(point)
        capture_workload(
            "uniform", path, n_cores=N_CORES, scale=SCALE, seed=SEED + 1, limit=64
        )
        assert runner.point_key(point) != key_before

    def test_relative_and_rooted_names_share_a_key_digest(self, capture, tmp_path):
        """Host-portability: the digest hashes content, never paths."""
        root = os.path.dirname(capture)
        name = f"trace:{os.path.basename(capture)}"
        rooted = make_runner(tmp_path / "a", trace_root=root)
        key_rooted = rooted.point_key(rooted.point(name, 1, "baseline"))
        moved = make_runner(tmp_path / "b", trace_root=root)
        assert moved.point_key(moved.point(name, 1, "baseline")) == key_rooted

    def test_trace_blobs_appear_in_manifest(self, capture, tmp_path):
        runner = make_runner(tmp_path)
        runner.run_point(runner.point(f"trace:{capture}", 1, "baseline"))
        runner.cache.write_manifest()
        manifest = runner.cache.read_manifest()
        assert manifest["count"] == 1
        (key,) = manifest["entries"]
        assert "/" not in key


class TestTraceInMix:
    def test_mix_with_trace_component_runs(self, capture, tmp_path):
        runner = make_runner(tmp_path)
        point = runner.point(f"mix:pingpong+trace:{capture}", 1, "protocol")
        res, energy = runner.run_point(point)
        assert res.total_cycles > 0

    def test_mix_rebases_trace_addresses(self, capture):
        from repro.workloads.mix import REBASE_STRIDE

        mix = get_workload(
            f"mix:pingpong+trace:{capture}",
            n_cores=N_CORES,
            scale=SCALE,
            seed=SEED,
        )
        streams = mix.streams(N_CORES)
        # core 1 runs the trace component, rebased by one stride
        rep = get_workload(f"trace:{capture}", n_cores=N_CORES)
        want = next(rep.streams(N_CORES)[1])
        gap, addr, flags = next(streams[1])
        assert (gap, addr - REBASE_STRIDE, flags) == want


class TestConvertedReplay:
    def test_csv_conversion_replays(self, tmp_path):
        src = tmp_path / "log.csv"
        src.write_text(
            "core,addr,write,gap\n"
            "0,0x1000,0,3\n0,0x1040,1,2\n0,0x1000,0,0\n"
            "1,0x2000,1,1\n1,0x2040,0,4\n"
        )
        out = str(tmp_path / "log.rtr")
        summary = convert_csv(str(src), out)
        assert summary["counts"] == [3, 2]
        wl = get_workload(f"trace:{out}", n_cores=2)
        # converted headers carry no access count; the trailer fills it
        assert wl.meta.accesses_per_core == 3
        streams = wl.streams(2)
        # flags default to ILP_MODERATE reads -> make_flags(False, 1) == 2
        assert next(streams[0]) == (3, 0x1000, 2)
        assert next(streams[1])[1] == 0x2000

    def test_csv_empty_field_rejected_not_shifted(self, tmp_path):
        """``0,,4096,1`` must fail, not parse 4096 as the address."""
        src = tmp_path / "bad.csv"
        src.write_text("core,addr,write,gap\n0,,4096,1\n")
        with pytest.raises(TraceError, match="bad address"):
            convert_csv(str(src), str(tmp_path / "bad.rtr"))

    def test_csv_trailing_empty_cells_tolerated(self, tmp_path):
        src = tmp_path / "trail.csv"
        src.write_text("core,addr,write\n0,0x40,1,,\n")
        summary = convert_csv(str(src), str(tmp_path / "trail.rtr"))
        assert summary["counts"] == [1]

    def test_capture_with_limit_truncates(self, tmp_path):
        path = str(tmp_path / "short.rtr")
        capture_workload(
            "uniform", path, n_cores=N_CORES, scale=SCALE, seed=SEED, limit=100
        )
        wl = get_workload(f"trace:{path}", n_cores=N_CORES)
        assert wl.meta.accesses_per_core == 100
        assert all(len(list(s)) == 100 for s in wl.streams(N_CORES))


class TestProvenance:
    def test_trace_points_record_capture_digest(self, capture, tmp_path):
        runner = make_runner(tmp_path)
        point = runner.point(f"trace:{capture}", 1, "baseline")
        runner.run_point(point)
        info = runner.cache.get_provenance(runner.point_key(point))
        refs = info["traces"]
        ref = refs[f"trace:{capture}"]
        assert ref["file"] == os.path.abspath(capture)
        assert ref["bytes"] == os.path.getsize(capture)
        digest = hashlib.sha256(open(capture, "rb").read()).hexdigest()
        assert ref["sha256"] == digest

    def test_synthetic_points_have_no_trace_table(self, tmp_path):
        runner = make_runner(tmp_path)
        point = runner.point("uniform", 1, "baseline")
        runner.run_point(point)
        info = runner.cache.get_provenance(runner.point_key(point))
        assert "traces" not in info

    def test_trace_root_resolves_relative_names(self, capture, tmp_path):
        root = os.path.dirname(capture)
        name = f"trace:{os.path.basename(capture)}"
        runner = make_runner(tmp_path, trace_root=root)
        point = runner.point(name, 1, "baseline")
        runner.run_point(point)
        refs = runner.cache.get_provenance(runner.point_key(point))["traces"]
        assert refs[name]["file"] == os.path.abspath(capture)
