"""Energy pipeline: fixpoint behaviour, technique orderings, calibration."""

import pytest

from repro import CMPConfig, TechniqueConfig, simulate
from repro.power.calibration import share_band
from repro.power.energy import EnergyModel, energy_reduction
from repro.workloads.registry import get_workload
from tests.conftest import tiny_config

SCALE = 0.04


@pytest.fixture(scope="module")
def runs():
    """Small paired runs across techniques on one workload."""
    wl = get_workload("uniform", scale=SCALE)
    out = {}
    for tech in ("baseline", "protocol", "decay"):
        cfg = tiny_config(tech, decay_cycles=3000, l2_kb=64)
        res = simulate(cfg, wl)
        out[tech] = (cfg, res, EnergyModel(cfg).evaluate(res))
    return out


class TestBreakdown:
    def test_total_is_sum_of_parts(self, runs):
        _, _, bd = runs["baseline"]
        assert bd.total == pytest.approx(
            bd.dynamic_total + bd.leakage_total)
        assert bd.dynamic_total == pytest.approx(
            bd.core_dynamic + bd.l1_dynamic + bd.l2_dynamic
            + bd.bus_dynamic + bd.counter_dynamic)

    def test_fixpoint_converges(self, runs):
        for tech in runs:
            assert runs[tech][2].fixpoint_iterations < 25

    def test_temperatures_above_ambient(self, runs):
        _, _, bd = runs["baseline"]
        from repro.thermal.rc_model import T_AMBIENT

        assert all(t > T_AMBIENT for t in bd.temperatures.values())

    def test_all_components_positive(self, runs):
        _, _, bd = runs["baseline"]
        assert bd.core_dynamic > 0
        assert bd.l1_dynamic > 0
        assert bd.l2_dynamic > 0
        assert bd.core_leakage > 0
        assert bd.l2_leakage > 0
        assert bd.duration_s > 0

    def test_baseline_has_no_counter_energy(self, runs):
        _, _, bd = runs["baseline"]
        assert bd.counter_dynamic == 0
        assert bd.counter_leakage == 0

    def test_decay_has_counter_energy(self, runs):
        _, _, bd = runs["decay"]
        assert bd.counter_dynamic > 0
        assert bd.counter_leakage > 0

    def test_summary_renders(self, runs):
        assert "L2 leakage" in runs["baseline"][2].summary()


class TestTechniqueOrdering:
    def test_gating_reduces_l2_leakage(self, runs):
        # On this cache-resident workload Protocol gates almost nothing
        # (the paper's small-cache regime: savings ~0, and the Gated-Vdd
        # area overhead can even flip the sign); Decay must clearly win.
        base = runs["baseline"][2].l2_leakage
        prot = runs["protocol"][2].l2_leakage
        dec = runs["decay"][2].l2_leakage
        assert dec < 0.5 * base
        assert dec < prot
        assert prot <= base * 1.06  # at most the 5% area overhead

    def test_energy_reduction_sign(self, runs):
        base = runs["baseline"][2]
        assert energy_reduction(base, base) == pytest.approx(0.0)
        assert energy_reduction(base, runs["protocol"][2]) >= -0.02

    def test_decay_cooler_than_baseline(self, runs):
        tb = max(runs["baseline"][2].temperatures.values())
        td = max(runs["decay"][2].temperatures.values())
        assert td <= tb


class TestCalibration:
    """The L2-leakage share must land inside the paper-implied bands."""

    @pytest.mark.parametrize("total_mb", [1, 4, 8])
    def test_share_bands(self, total_mb):
        wl = get_workload("uniform", scale=SCALE)
        cfg = CMPConfig().with_total_l2_mb(total_mb)
        res = simulate(cfg, wl)
        bd = EnergyModel(cfg).evaluate(res)
        lo, hi = share_band(total_mb)
        assert lo <= bd.l2_leakage_share <= hi, (
            f"{total_mb}MB share {bd.l2_leakage_share:.1%} outside "
            f"[{lo:.1%}, {hi:.1%}]")

    def test_share_grows_with_size(self):
        wl = get_workload("uniform", scale=SCALE)
        shares = []
        for mb in (1, 4, 8):
            cfg = CMPConfig().with_total_l2_mb(mb)
            bd = EnergyModel(cfg).evaluate(simulate(cfg, wl))
            shares.append(bd.l2_leakage_share)
        assert shares[0] < shares[1] < shares[2]


class TestTransientMode:
    def test_requires_samples(self, runs):
        cfg, res, _ = runs["baseline"]
        with pytest.raises(ValueError):
            EnergyModel(cfg).transient_temperatures(res)

    def test_transient_trace(self):
        wl = get_workload("uniform", scale=SCALE)
        cfg = tiny_config()
        from dataclasses import replace

        cfg = replace(cfg, sample_interval=5_000)
        res = simulate(cfg, wl)
        model = EnergyModel(cfg)
        trace = model.transient_temperatures(res)
        assert len(trace) == len(res.samples)
        assert all(t["core0"] >= model.thermal.params.t_ambient - 1
                   for t in trace)
