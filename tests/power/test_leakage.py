"""Liao-style leakage model: temperature behaviour and gating."""

import numpy as np
import pytest

from repro.power.leakage import (
    LeakageModel,
    activation_constant,
    leakage_watts_per_mb,
)


class TestTemperatureBehaviour:
    def test_monotone_in_temperature(self):
        m = LeakageModel()
        temps = [320, 340, 360, 380]
        powers = [m.cell_power(t) for t in temps]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_reference_point(self):
        m = LeakageModel()
        assert m.cell_power(m.t_ref) == pytest.approx(m.p_cell_ref, rel=1e-9)

    def test_doubling_interval_realistic(self):
        # 70nm subthreshold leakage doubles roughly every 20-30 K.
        d = LeakageModel().doubling_interval()
        assert 15 < d < 40

    def test_scale_vectorized(self):
        m = LeakageModel()
        arr = m.scale(np.array([340.0, 353.0, 370.0]))
        assert arr.shape == (3,)
        assert arr[1] == pytest.approx(1.0)

    def test_gate_fraction_temperature_independent(self):
        m = LeakageModel(gate_fraction=1.0)  # pure gate leakage
        assert m.cell_power(320) == pytest.approx(m.cell_power(390))

    def test_activation_constant(self):
        assert activation_constant(0.33, 1.5) == pytest.approx(2553, rel=0.01)


class TestGating:
    def test_gated_cell_nearly_zero(self):
        m = LeakageModel()
        assert m.gated_cell_power(360) < 0.05 * m.cell_power(360)

    def test_area_overhead_charged_on_powered(self):
        m = LeakageModel()
        with_gv = m.array_power(1000, 0, 360, gated_vdd_present=True)
        without = m.array_power(1000, 0, 360, gated_vdd_present=False)
        assert with_gv == pytest.approx(without * 1.05)

    def test_gating_saves(self):
        m = LeakageModel()
        all_on = m.array_power(1000, 0, 360)
        half = m.array_power(500, 500, 360)
        assert half < 0.6 * all_on

    def test_watts_per_mb_order_of_magnitude(self):
        # Calibrated to the paper's implied shares: W-per-MB at 80C should
        # be in the single-digit range (see power/calibration.py).
        w = leakage_watts_per_mb(LeakageModel(), 353.0)
        assert 1.0 < w < 15.0
