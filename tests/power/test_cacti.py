"""CACTI-like model: scaling behaviour with size and associativity."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.power.cacti import CacheEnergyModel, l1_model, l2_model


class TestScaling:
    def test_energy_grows_with_size(self):
        sizes = [256, 512, 1024, 2048]
        energies = [l2_model(kb * 1024).read_energy for kb in sizes]
        assert all(a < b for a, b in zip(energies, energies[1:]))

    def test_energy_sublinear_in_size(self):
        # Doubling capacity must not double per-access energy (banking).
        e1 = l2_model(512 * 1024).read_energy
        e2 = l2_model(1024 * 1024).read_energy
        assert e2 < 2 * e1

    def test_energy_grows_with_assoc(self):
        e4 = l2_model(1024 * 1024, assoc=4).read_energy
        e16 = l2_model(1024 * 1024, assoc=16).read_energy
        assert e16 > e4

    def test_write_close_to_read(self):
        m = l2_model(1024 * 1024)
        assert 0.5 * m.read_energy < m.write_energy < 2.0 * m.read_energy

    def test_l1_cheaper_than_l2(self):
        assert l1_model().read_energy < l2_model(1024 * 1024).read_energy

    def test_cell_count_includes_tags(self):
        m = l2_model(1024 * 1024)
        data_bits = 1024 * 1024 * 8
        assert m.cell_count > data_bits

    def test_area_scales_linearly(self):
        a1 = l2_model(512 * 1024).area_mm2
        a2 = l2_model(1024 * 1024).area_mm2
        assert a2 == pytest.approx(2 * a1, rel=0.01)

    def test_subarray_partitioning(self):
        small = CacheEnergyModel.build(CacheGeometry(64 * 1024, 64, 8))
        big = CacheEnergyModel.build(CacheGeometry(8 * 1024 * 1024, 64, 8))
        assert small.subarrays == 1
        assert big.subarrays > 1


class TestAccessEnergy:
    def test_mix(self):
        m = l2_model(1024 * 1024)
        e = m.access_energy(reads=10, writes=5)
        assert e == pytest.approx(
            10 * m.read_energy + 5 * m.write_energy)

    def test_magnitude_reasonable(self):
        # 1MB bank at 70nm: ~0.1-2 nJ per read
        e = l2_model(1024 * 1024).read_energy
        assert 0.05e-9 < e < 5e-9

    def test_energy_per_kb_decreases(self):
        small = l2_model(256 * 1024)
        big = l2_model(2048 * 1024)
        assert big.energy_per_kb() < small.energy_per_kb()
