"""Address-space allocator and region arithmetic."""

import pytest

from repro.workloads.address_space import REGION_ALIGN, AddressSpace, Region


class TestAllocation:
    def test_regions_disjoint(self):
        sp = AddressSpace()
        sp.alloc("a", 10_000)
        sp.alloc("b", 5_000)
        sp.alloc_kb("c", 64, shared=True)
        sp.check_disjoint()

    def test_alignment(self):
        sp = AddressSpace()
        r = sp.alloc("a", 100)
        assert r.size % REGION_ALIGN == 0
        assert r.base % REGION_ALIGN == 0

    def test_duplicate_name_rejected(self):
        sp = AddressSpace()
        sp.alloc("a", 100)
        with pytest.raises(ValueError):
            sp.alloc("a", 100)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc("a", 0)

    def test_lookup_and_listing(self):
        sp = AddressSpace()
        a = sp.alloc("a", 4096)
        assert sp.region("a") is a
        assert sp.regions() == [a]

    def test_footprint_accounting(self):
        sp = AddressSpace()
        sp.alloc("priv", 8192, shared=False)
        sp.alloc("shr", 4096, shared=True)
        assert sp.total_bytes == 8192 + 4096
        assert sp.footprint_bytes(include_shared=False) == 8192


class TestRegion:
    def test_line_addressing(self):
        r = Region("r", base=4096, size=4096, shared=False)
        assert r.n_lines(64) == 64
        assert r.line_addr(0, 64) == 4096
        assert r.line_addr(63, 64) == 4096 + 63 * 64
        assert r.line_addr(64, 64) == 4096  # wraps

    def test_contains(self):
        r = Region("r", 4096, 4096, False)
        assert r.contains(4096)
        assert r.contains(8191)
        assert not r.contains(8192)
        assert not r.contains(0)

    def test_slices_partition(self):
        r = Region("r", 0, 16 * REGION_ALIGN, True)
        parts = [r.slice(k, 4) for k in range(4)]
        assert parts[0].base == r.base
        assert parts[-1].end == r.end
        for a, b in zip(parts, parts[1:]):
            assert a.end == b.base

    def test_slice_bounds(self):
        r = Region("r", 0, 16 * REGION_ALIGN, True)
        with pytest.raises(ValueError):
            r.slice(4, 4)

    def test_slice_too_small(self):
        r = Region("r", 0, REGION_ALIGN, True)
        with pytest.raises(ValueError):
            r.slice(0, 4)
