"""Pattern components: coverage, reuse positions, determinism."""

import numpy as np
import pytest

from repro.workloads.address_space import AddressSpace
from repro.workloads.patterns import (
    ColdStream,
    HotSet,
    LaggedRevisit,
    MigratoryChunk,
    PointerChase,
    ProducerConsumer,
    SharedSweep,
    TrailingRevisit,
    WriteFracOverride,
)

LINE = 64


@pytest.fixture
def region():
    return AddressSpace().alloc("r", 256 * LINE)


def emit_n(comp, n, history=None):
    history = history if history is not None else []
    out = []
    for _ in range(n):
        rec = comp.emit(history)
        history.append(rec[0])
        out.append(rec)
    return out


class TestColdStream:
    def test_sequential_coverage(self, region):
        c = ColdStream(region, LINE, seed=1)
        addrs = [r[0] for r in emit_n(c, 256)]
        assert addrs == [region.base + i * LINE for i in range(256)]
        assert c.wrapped == 1  # wrapped counts completed passes

    def test_wraps(self, region):
        c = ColdStream(region, LINE, seed=1)
        emit_n(c, 300)
        assert c.wrapped == 1
        assert c.pos == 300 - 256
        emit_n(c, 256)
        assert c.wrapped == 2

    def test_write_fraction_respected(self, region):
        c = ColdStream(region, LINE, seed=1, write_frac=0.5)
        writes = sum(1 for r in emit_n(c, 2000) if r[1])
        assert 800 < writes < 1200

    def test_stride(self, region):
        c = ColdStream(region, LINE, seed=1, stride_lines=2)
        addrs = [r[0] for r in emit_n(c, 3)]
        assert addrs == [region.base, region.base + 2 * LINE,
                         region.base + 4 * LINE]


class TestHotSet:
    def test_stays_inside_hot_lines(self, region):
        h = HotSet(region, LINE, seed=1, hot_lines=8)
        for addr, _, _ in emit_n(h, 500):
            assert (addr - region.base) // LINE < 8

    def test_uniform_covers_all(self, region):
        h = HotSet(region, LINE, seed=1, hot_lines=8)
        seen = {(a - region.base) // LINE for a, _, _ in emit_n(h, 500)}
        assert seen == set(range(8))

    def test_zipf_skew(self, region):
        h = HotSet(region, LINE, seed=1, hot_lines=32, zipf_alpha=1.5)
        from collections import Counter

        counts = Counter((a - region.base) // LINE
                         for a, _, _ in emit_n(h, 5000))
        assert counts[0] > counts.get(31, 0) * 3

    def test_deterministic(self, region):
        a = emit_n(HotSet(region, LINE, seed=9, hot_lines=8), 100)
        b = emit_n(HotSet(region, LINE, seed=9, hot_lines=8), 100)
        assert a == b

    def test_validation(self, region):
        with pytest.raises(ValueError):
            HotSet(region, LINE, 1, hot_lines=0)


class TestTrailingRevisit:
    def test_revisits_at_lag(self, region):
        cold = ColdStream(region, LINE, seed=1)
        tr = TrailingRevisit(cold, seed=2, lag_cold_steps=10, jitter_frac=0.0)
        emit_n(cold, 50)
        addr, _, _ = tr.emit([])
        assert (addr - region.base) // LINE == 50 - 10

    def test_fallback_before_coverage(self, region):
        cold = ColdStream(region, LINE, seed=1)
        hot = HotSet(region, LINE, seed=3, hot_lines=4)
        tr = TrailingRevisit(cold, seed=2, lag_cold_steps=100,
                             fallback=hot)
        emit_n(cold, 5)  # not enough coverage for lag 100
        addr, _, _ = tr.emit([])
        assert (addr - region.base) // LINE < 4  # fell back to hot

    def test_jitter_bounded(self, region):
        cold = ColdStream(region, LINE, seed=1)
        tr = TrailingRevisit(cold, seed=2, lag_cold_steps=20,
                             jitter_frac=0.2)
        emit_n(cold, 200)
        for _ in range(100):
            addr, _, _ = tr.emit([])
            lag = 200 - (addr - region.base) // LINE
            assert 16 <= lag <= 24

    def test_validation(self, region):
        cold = ColdStream(region, LINE, seed=1)
        with pytest.raises(ValueError):
            TrailingRevisit(cold, 1, lag_cold_steps=0)


class TestLaggedRevisit:
    def test_reads_history_at_lag(self):
        lr = LaggedRevisit(LINE, seed=1, lag_accesses=5, jitter_frac=0.0)
        history = [100 * i for i in range(20)]
        addr, _, _ = lr.emit(history)
        assert addr == history[15]

    def test_fallback_on_short_history(self):
        region = AddressSpace().alloc("f", 16 * LINE)
        hot = HotSet(region, LINE, seed=1, hot_lines=2)
        lr = LaggedRevisit(LINE, seed=1, lag_accesses=100, fallback=hot)
        addr, _, _ = lr.emit([1, 2, 3])
        assert region.contains(addr)


class TestPointerChase:
    def test_full_cycle_permutation(self, region):
        pc = PointerChase(region, LINE, seed=1, n_nodes=32)
        addrs = [pc.emit([])[0] for _ in range(32)]
        assert len(set(addrs)) == 32  # visits every node once per cycle
        again = [pc.emit([])[0] for _ in range(32)]
        assert addrs == again  # same cycle order

    def test_dependent_ilp(self, region):
        from repro.workloads.trace import ILP_DEPENDENT

        pc = PointerChase(region, LINE, seed=1, n_nodes=8)
        assert pc.emit([])[2] == ILP_DEPENDENT


class TestMigratoryAndProdCons:
    def test_rmw_pairs_same_line(self, region):
        m = MigratoryChunk(region, LINE, seed=1, rmw=True)
        a1, w1, _ = m.emit([])
        a2, w2, _ = m.emit([])
        assert a1 == a2
        assert (w1, w2) == (False, True)

    def test_producer_writes_consumer_reads(self, region):
        p = ProducerConsumer(region, LINE, seed=1, producing=True)
        c = ProducerConsumer(region, LINE, seed=1, producing=False)
        assert all(w for _, w, _ in emit_n(p, 50))
        assert not any(w for _, w, _ in emit_n(c, 50))


class TestSharedSweepAndOverride:
    def test_staggered_start(self, region):
        s0 = SharedSweep(region, LINE, seed=1, start_frac=0.0)
        s1 = SharedSweep(region, LINE, seed=1, start_frac=0.5)
        a0 = s0.emit([])[0]
        a1 = s1.emit([])[0]
        assert a1 - a0 == 128 * LINE

    def test_write_frac_override_keeps_position(self, region):
        cold = ColdStream(region, LINE, seed=1, write_frac=0.0)
        ov = WriteFracOverride(cold, write_frac=1.0, seed=2)
        assert all(w for _, w, _ in emit_n(ov, 20))
        # position advanced through the wrapper
        assert cold.pos == 20
        addr, w, _ = cold.emit([])
        assert (addr - region.base) // LINE == 20
        assert not w  # original write_frac back in effect
