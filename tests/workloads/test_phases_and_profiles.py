"""Phase mixtures, barriers, benchmark profiles, registry."""

import pytest

from repro.workloads.address_space import AddressSpace
from repro.workloads.patterns import ColdStream, HotSet
from repro.workloads.phases import (
    PhaseSpec,
    estimate_cycles_per_access,
    lag_accesses,
    phase_stream,
)
from repro.workloads.profiles import build_profile_workload
from repro.workloads.registry import (
    MULTIMEDIA,
    PAPER_BENCHMARKS,
    SCIENTIFIC,
    get_workload,
    list_workloads,
    register_workload,
)
from repro.workloads.splash2 import FMM, VOLREND, WATER_NS
from repro.workloads.alpbench import FACEREC, MPEG2DEC, MPEG2ENC
from repro.workloads.trace import (
    is_barrier,
    is_write,
    validate_stream,
)

LINE = 64
ALL_PROFILES = [WATER_NS, FMM, VOLREND, MPEG2ENC, MPEG2DEC, FACEREC]


def components(region):
    return [
        HotSet(region, LINE, seed=1, hot_lines=4, write_frac=0.5),
        ColdStream(region, LINE, seed=2),
    ]


class TestPhaseStream:
    def test_record_count_and_barriers(self):
        region = AddressSpace().alloc("r", 64 * LINE)
        phases = [PhaseSpec(components(region), [0.5, 0.5], 100, 5.0)
                  for _ in range(3)]
        recs = list(phase_stream(phases, seed=1))
        barriers = sum(1 for _, _, f in recs if is_barrier(f))
        assert barriers == 2  # between phases only
        assert len(recs) == 300 + 2

    def test_mixture_weights_respected(self):
        region = AddressSpace().alloc("r", 1024 * LINE)
        comps = components(region)
        phases = [PhaseSpec(comps, [0.9, 0.1], 5000, 5.0)]
        recs = [r for r in phase_stream(phases, seed=1)]
        hot_hits = sum(1 for a, _, _ in recs
                       if (a - region.base) // LINE < 4)
        assert hot_hits > 4000  # ~90%

    def test_gap_mean(self):
        region = AddressSpace().alloc("r", 64 * LINE)
        phases = [PhaseSpec(components(region), [1, 1], 5000, 12.0)]
        gaps = [g for g, _, _ in phase_stream(phases, seed=1)]
        assert 10.5 < sum(gaps) / len(gaps) < 13.5

    def test_deterministic(self):
        region = AddressSpace().alloc("r", 64 * LINE)
        a = list(phase_stream(
            [PhaseSpec(components(region), [1, 1], 200, 5.0)], seed=7))
        region2 = AddressSpace().alloc("r", 64 * LINE)
        b = list(phase_stream(
            [PhaseSpec(components(region2), [1, 1], 200, 5.0)], seed=7))
        assert a == b

    def test_spec_validation(self):
        region = AddressSpace().alloc("r", 64 * LINE)
        with pytest.raises(ValueError):
            PhaseSpec(components(region), [1.0], 10)
        with pytest.raises(ValueError):
            PhaseSpec(components(region), [0.0, 0.0], 10)
        with pytest.raises(ValueError):
            PhaseSpec([], [], 10)


class TestLagHelpers:
    def test_cpa_monotonic_in_gap(self):
        assert estimate_cycles_per_access(20) > estimate_cycles_per_access(5)

    def test_lag_accesses_scales(self):
        assert lag_accesses(10_000, 10) == pytest.approx(
            10_000 / estimate_cycles_per_access(10), abs=1)
        assert lag_accesses(1, 10) >= 1


class TestProfiles:
    @pytest.mark.parametrize("profile", ALL_PROFILES,
                             ids=lambda p: p.name)
    def test_weights_sum_to_one(self, profile):
        assert profile.weight_sum() == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("profile", ALL_PROFILES,
                             ids=lambda p: p.name)
    def test_builds_and_streams(self, profile):
        wl = build_profile_workload(profile, n_cores=4, scale=0.04, seed=1)
        streams = wl.streams(4)
        assert len(streams) == 4
        summary = validate_stream(streams[0], max_records=5000)
        assert summary["records"] == 5000
        assert summary["writes"] > 0

    @pytest.mark.parametrize("profile", ALL_PROFILES,
                             ids=lambda p: p.name)
    def test_trail_refs_resolve(self, profile):
        names = {c.name for c in profile.components}
        for c in profile.components:
            if c.kind == "trail":
                assert c.ref in names

    def test_streams_are_replayable(self):
        wl = get_workload("water_ns", scale=0.04)
        a = list(zip(range(2000), wl.streams(4)[0]))
        b = list(zip(range(2000), wl.streams(4)[0]))
        assert a == b

    def test_cores_have_distinct_streams(self):
        wl = get_workload("water_ns", scale=0.04)
        s = wl.streams(4)
        a = [next(s[0]) for _ in range(100)]
        b = [next(s[1]) for _ in range(100)]
        assert a != b

    def test_scientific_flag(self):
        for name in SCIENTIFIC:
            assert get_workload(name, scale=0.04).meta.kind == "scientific"
        for name in MULTIMEDIA:
            assert get_workload(name, scale=0.04).meta.kind == "multimedia"


class TestRegistry:
    def test_paper_benchmarks_registered(self):
        avail = list_workloads()
        for name in PAPER_BENCHMARKS:
            assert name in avail

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            get_workload("linpack")

    def test_register_custom(self):
        def builder(n_cores=4, scale=1.0, seed=1, line_bytes=64):
            return get_workload("uniform", n_cores, 0.04, seed, line_bytes)

        register_workload("custom_x", builder)
        assert "custom_x" in list_workloads()
        with pytest.raises(ValueError):
            register_workload("custom_x", builder)

    def test_scale_guard(self):
        with pytest.raises(ValueError):
            get_workload("water_ns", scale=0.001)
        with pytest.raises(ValueError):
            get_workload("water_ns", scale=-1)

    def test_wrong_core_count_rejected(self):
        wl = get_workload("water_ns", n_cores=4, scale=0.04)
        with pytest.raises(ValueError):
            wl.streams(2)
