"""Multi-program mix layer: names, dispatch, stream assignment."""

import pytest

from repro.workloads.mix import (
    assignment,
    is_mix_name,
    mix_components_exist,
    mix_name,
    mix_workload,
    parse_mix_name,
)
from repro.workloads.registry import get_workload, workload_exists


class TestMixNames:
    def test_roundtrip(self):
        name = mix_name(["water_ns", "mpeg2dec"])
        assert name == "mix:water_ns+mpeg2dec"
        assert is_mix_name(name)
        assert parse_mix_name(name) == ["water_ns", "mpeg2dec"]

    def test_single_component_allowed(self):
        assert parse_mix_name("mix:uniform") == ["uniform"]

    def test_bad_names_rejected(self):
        with pytest.raises(ValueError):
            parse_mix_name("water_ns+mpeg2dec")  # no prefix
        with pytest.raises(ValueError):
            parse_mix_name("mix:")
        with pytest.raises(ValueError):
            parse_mix_name("mix:a++b")
        with pytest.raises(ValueError):
            mix_name([])

    def test_component_existence(self):
        assert mix_components_exist("mix:uniform+pingpong")
        assert not mix_components_exist("mix:uniform+nope")
        assert not mix_components_exist("plain_name")

    def test_workload_exists_covers_mixes(self):
        assert workload_exists("uniform")
        assert workload_exists("mix:uniform+pingpong")
        assert not workload_exists("mix:uniform+nope")
        assert not workload_exists("nope")

    def test_assignment_round_robin(self):
        assert assignment(["a", "b"], 4) == ["a", "b", "a", "b"]
        assert assignment(["a", "b", "c"], 4) == ["a", "b", "c", "a"]


class TestMixWorkload:
    def test_registry_dispatch(self):
        wl = get_workload("mix:uniform+pingpong", n_cores=4, scale=0.04)
        assert wl.name == "mix:uniform+pingpong"
        assert wl.meta.suite == "mix"

    def test_unknown_component_raises(self):
        with pytest.raises(ValueError):
            get_workload("mix:uniform+nope", scale=0.04)

    def test_core_streams_match_homogeneous_parents(self):
        """Core c replays core c of its component, shifted per component."""
        from repro.workloads.mix import REBASE_STRIDE

        mix = get_workload("mix:uniform+pingpong", n_cores=4, scale=0.04)
        uni = get_workload("uniform", n_cores=4, scale=0.04)
        ping = get_workload("pingpong", n_cores=4, scale=0.04)
        mix_streams = mix.streams(4)
        uni_streams = uni.streams(4)
        ping_streams = ping.streams(4)
        # component 0 sits in the base window, component 1 one stride up
        for c, parent, off in ((0, uni_streams, 0),
                               (1, ping_streams, REBASE_STRIDE)):
            got = [next(mix_streams[c]) for _ in range(50)]
            want = [
                (gap, addr + off, flags)
                for gap, addr, flags in (next(parent[c]) for _ in range(50))
            ]
            assert got == want

    def test_components_never_alias_cache_lines(self):
        """Co-scheduled programs must not share any line address."""
        mix = get_workload("mix:uniform+pingpong", n_cores=2, scale=0.04)
        streams = mix.streams(2)
        lines = []
        for stream in streams:
            lines.append(
                {addr // 64 for _, addr, flags in
                 (next(stream) for _ in range(2000)) if not (flags & 0x8)}
            )
        assert not (lines[0] & lines[1])

    def test_repeated_component_shares_one_window(self):
        """mix:a+b+a: both 'a' cores stay in the same address window."""
        from repro.workloads.mix import REBASE_STRIDE

        mix = get_workload("mix:pingpong+uniform+pingpong", n_cores=3,
                           scale=0.04)
        streams = mix.streams(3)
        addrs = [
            [addr for _, addr, flags in (next(s) for _ in range(100))
             if not (flags & 0x8)]
            for s in streams
        ]
        # cores 0 and 2 run pingpong (offset 0): all below one stride;
        # core 1 runs uniform, rebased one stride up
        assert all(a < REBASE_STRIDE for a in addrs[0] + addrs[2])
        assert all(REBASE_STRIDE <= a < 2 * REBASE_STRIDE for a in addrs[1])
        # pingpong is a shared-region ping-pong: its two cores must still
        # genuinely share lines after the rebase
        assert {a // 64 for a in addrs[0]} & {a // 64 for a in addrs[2]}

    def test_streams_fresh_per_call(self):
        wl = mix_workload("mix:uniform+pingpong", n_cores=2, scale=0.04)
        a = [next(wl.streams(2)[0]) for _ in range(20)]
        b = [next(wl.streams(2)[0]) for _ in range(20)]
        assert a == b

    def test_wrong_core_count_rejected(self):
        wl = mix_workload("mix:uniform+pingpong", n_cores=4, scale=0.04)
        with pytest.raises(ValueError):
            wl.streams(2)
