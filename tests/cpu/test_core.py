"""Core timing model: issue, overlap budgets, barriers, warmup rebase."""

import pytest

from repro.cpu.core import AT_BARRIER, DONE, RUNNING, Core
from repro.hierarchy.system import MemorySystem
from repro.workloads.trace import (
    ILP_DEPENDENT,
    ILP_MODERATE,
    ILP_STREAMING,
    barrier_record,
    make_flags,
)
from tests.conftest import tiny_config


def run_core(records, cfg=None):
    cfg = cfg or tiny_config()
    sys = MemorySystem(cfg)
    core = Core(0, cfg, sys.l1s[0], iter(records))
    while core.state == RUNNING:
        core.step()
    core.finalize_stats()
    return core, sys


class TestComputeGaps:
    def test_gap_charged_at_issue_width(self):
        # 400 gap instructions at width 4 = 100 cycles + 1 issue + miss
        records = [(400, 0x1000, make_flags(False, ILP_STREAMING))]
        core, _ = run_core(records)
        assert core.stats.instructions == 401
        assert core.cycle >= 100

    def test_issue_accumulator_no_loss(self):
        # gaps of 1 at width 4 must still advance 1 cycle per 4 records
        records = [(1, 0x1000, make_flags(False, ILP_STREAMING))
                   for _ in range(40)]
        core, _ = run_core(records)
        # 40 gap instr -> 10 cycles of issue + 40 op cycles + memory
        assert core.stats.instructions == 80

    def test_done_state(self):
        core, _ = run_core([])
        assert core.state == DONE
        assert core.next_time == float("inf")


class TestOverlapBudgets:
    def make(self, ilp):
        return [(0, 0x2000, make_flags(False, ilp))]

    def test_dependent_exposes_more_than_streaming(self):
        cfg = tiny_config()
        dep, _ = run_core(self.make(ILP_DEPENDENT), cfg)
        stream, _ = run_core(self.make(ILP_STREAMING), cfg)
        assert dep.stats.exposed_memory_cycles > \
            stream.stats.exposed_memory_cycles

    def test_l1_hit_fully_hidden(self):
        recs = [(0, 0x2000, make_flags(False, ILP_MODERATE)),
                (0, 0x2000, make_flags(False, ILP_MODERATE))]
        core, _ = run_core(recs)
        # second access hits L1 (latency 2 < overlap 120): no exposure added
        assert core.stats.loads == 2

    def test_exposure_never_negative(self):
        core, _ = run_core(self.make(ILP_STREAMING))
        assert core.stats.exposed_memory_cycles >= 0


class TestStores:
    def test_store_retires_quickly(self):
        records = [(0, 0x3000, make_flags(True))]
        core, sys = run_core(records)
        assert core.stats.stores == 1
        assert core.cycle <= 3  # 1 issue + 1 store
        assert sys.l1s[0].has_pending_write(0x3000 >> 6)


class TestBarriers:
    def test_barrier_parks_core(self):
        cfg = tiny_config()
        sys = MemorySystem(cfg)
        records = [(10, 0, make_flags(False, ILP_STREAMING)),
                   barrier_record(),
                   (10, 0, make_flags(False, ILP_STREAMING))]
        core = Core(0, cfg, sys.l1s[0], iter(records))
        core.step()
        state = core.step()
        assert state == AT_BARRIER
        assert core.next_time == float("inf")

    def test_release_accounts_wait(self):
        cfg = tiny_config()
        sys = MemorySystem(cfg)
        core = Core(0, cfg, sys.l1s[0], iter([barrier_record()]))
        core.step()
        arrival = core.barrier_arrival
        core.release_barrier(arrival + 500)
        assert core.stats.barrier_wait_cycles == 500
        assert core.state == DONE  # no more records

    def test_barrier_counts_gap_instructions(self):
        cfg = tiny_config()
        sys = MemorySystem(cfg)
        core = Core(0, cfg, sys.l1s[0], iter([(7, 0, make_flags(False) | 0x8)]))
        core.step()
        assert core.stats.instructions == 7
        assert core.stats.barriers == 1


class TestWarmupRebase:
    def test_rebase_zeroes_counters(self):
        records = [(10, 0x1000 + i * 64, make_flags(False, ILP_STREAMING))
                   for i in range(20)]
        cfg = tiny_config()
        sys = MemorySystem(cfg)
        core = Core(0, cfg, sys.l1s[0], iter(records))
        for _ in range(10):
            core.step()
        core.rebase_stats()
        assert core.stats.instructions == 0
        while core.state == RUNNING:
            core.step()
        core.finalize_stats()
        assert core.stats.instructions == 10 * 11
        assert core.stats.cycles < core.cycle  # only post-rebase counted

    def test_ipc_sane(self):
        records = [(40, 0x5000, make_flags(True))] * 50
        core, _ = run_core(records)
        ipc = core.stats.instructions / core.stats.cycles
        assert 1.0 < ipc <= 4.0  # bounded by issue width
