"""Floorplan geometry and the RC thermal network."""

import pytest

from repro.thermal.floorplan import Block, cmp_floorplan
from repro.thermal.rc_model import ThermalParams, ThermalRCModel


class TestFloorplan:
    def test_four_core_layout(self):
        fp = cmp_floorplan(4, l2_bank_area_mm2=8.0)
        names = fp.names()
        assert {f"core{i}" for i in range(4)} <= set(names)
        assert {f"l2_{i}" for i in range(4)} <= set(names)
        assert "bus" in names

    def test_l2_adjacent_to_its_core(self):
        fp = cmp_floorplan(4, 8.0)
        for i in range(4):
            assert fp.graph.has_edge(f"core{i}", f"l2_{i}")

    def test_l2_adjacent_to_bus(self):
        fp = cmp_floorplan(4, 8.0)
        for i in range(4):
            assert fp.graph.has_edge(f"l2_{i}", "bus")

    def test_cores_not_adjacent_to_bus(self):
        fp = cmp_floorplan(4, 8.0)
        for i in range(4):
            assert not fp.graph.has_edge(f"core{i}", "bus")

    def test_area_preserved(self):
        fp = cmp_floorplan(4, 8.0)
        for i in range(4):
            assert fp.block(f"l2_{i}").area == pytest.approx(8.0, rel=0.01)

    def test_die_grows_with_cache(self):
        small = cmp_floorplan(4, 4.0).die_area
        big = cmp_floorplan(4, 16.0).die_area
        assert big > small

    def test_shared_edge_detection(self):
        a = Block("a", 0, 0, 2, 2)
        b = Block("b", 2, 0, 2, 2)
        c = Block("c", 10, 10, 1, 1)
        assert a.shared_edge(b) == pytest.approx(2.0)
        assert a.shared_edge(c) == 0.0


class TestRCModel:
    @pytest.fixture
    def model(self):
        return ThermalRCModel(cmp_floorplan(4, 8.0))

    def test_zero_power_is_ambient(self, model):
        t = model.steady_state({})
        for v in t.values():
            assert v == pytest.approx(model.params.t_ambient)

    def test_heating_raises_hot_block_most(self, model):
        t = model.steady_state({"core0": 10.0})
        assert t["core0"] == max(t.values())
        assert t["core0"] > model.params.t_ambient + 5

    def test_neighbour_warmer_than_far_block(self, model):
        t = model.steady_state({"core0": 10.0})
        assert t["l2_0"] > t["core3"]

    def test_superposition(self, model):
        # The network is linear: T(P1+P2) = T(P1) + T(P2) - T(0).
        t1 = model.steady_state({"core0": 5.0})
        t2 = model.steady_state({"l2_1": 7.0})
        t12 = model.steady_state({"core0": 5.0, "l2_1": 7.0})
        amb = model.params.t_ambient
        for nm in model.names:
            assert t12[nm] == pytest.approx(t1[nm] + t2[nm] - amb, abs=1e-6)

    def test_transient_converges_to_steady_state(self, model):
        powers = {"core0": 8.0, "l2_0": 4.0}
        steady = model.steady_state(powers)
        trace = model.transient([powers] * 3000, dt_seconds=1e-2)
        final = trace[-1]
        for nm in model.names:
            assert final[nm] == pytest.approx(steady[nm], abs=0.5)

    def test_transient_monotone_warmup(self, model):
        trace = model.transient([{"core0": 10.0}] * 50, dt_seconds=1e-4)
        temps = [s["core0"] for s in trace]
        assert all(a <= b + 1e-9 for a, b in zip(temps, temps[1:]))

    def test_unknown_block_rejected(self, model):
        with pytest.raises(KeyError):
            model.steady_state({"gpu": 5.0})

    def test_negative_power_rejected(self, model):
        with pytest.raises(ValueError):
            model.steady_state({"core0": -1.0})

    def test_thermal_resistance_positive(self, model):
        r = model.thermal_resistance("core0")
        assert r > 0
