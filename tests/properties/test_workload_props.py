"""Property-based workload tests: streams stay well-formed for any
benchmark, seed and supported scale."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.registry import PAPER_BENCHMARKS, get_workload
from repro.workloads.trace import is_barrier, is_write

benchmark_names = st.sampled_from(PAPER_BENCHMARKS)
seeds = st.integers(1, 10_000)
scales = st.floats(0.04, 0.2)


class TestStreamWellFormedness:
    @given(benchmark_names, seeds)
    @settings(max_examples=15, deadline=None)
    def test_records_well_formed(self, name, seed):
        wl = get_workload(name, scale=0.04, seed=seed)
        stream = wl.streams(4)[0]
        for _, rec in zip(range(3000), stream):
            gap, addr, flags = rec
            assert gap >= 0
            assert addr >= 0
            assert 0 <= flags <= 0xF

    @given(benchmark_names, seeds)
    @settings(max_examples=10, deadline=None)
    def test_replay_determinism(self, name, seed):
        wl = get_workload(name, scale=0.04, seed=seed)
        a = [r for _, r in zip(range(1500), wl.streams(4)[2])]
        b = [r for _, r in zip(range(1500), wl.streams(4)[2])]
        assert a == b

    @given(benchmark_names)
    @settings(max_examples=8, deadline=None)
    def test_write_fraction_sane(self, name):
        wl = get_workload(name, scale=0.04)
        stream = wl.streams(4)[0]
        writes = total = 0
        for _, (_, _, flags) in zip(range(5000), stream):
            if is_barrier(flags):
                continue
            total += 1
            writes += is_write(flags)
        # every benchmark mixes loads and stores, stores are the minority
        assert 0.03 < writes / total < 0.6

    @given(benchmark_names, seeds)
    @settings(max_examples=10, deadline=None)
    def test_all_cores_emit_expected_count(self, name, seed):
        wl = get_workload(name, scale=0.04, seed=seed)
        expected = wl.meta.accesses_per_core
        for stream in wl.streams(4):
            n = sum(1 for _, _, f in stream if not is_barrier(f))
            # per-phase integer division may drop a handful of records
            assert expected * 0.97 <= n <= expected

    @given(benchmark_names)
    @settings(max_examples=8, deadline=None)
    def test_barrier_counts_match_across_cores(self, name):
        wl = get_workload(name, scale=0.04)
        counts = []
        for stream in wl.streams(4):
            counts.append(sum(1 for _, _, f in stream if is_barrier(f)))
        assert len(set(counts)) == 1  # else the simulator would deadlock
