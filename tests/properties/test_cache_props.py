"""Property-based tests: cache array vs. a reference model, LRU oracle."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.array import CacheArray
from repro.cache.geometry import CacheGeometry

LINE = 64
SETS = 4
ASSOC = 2


class ReferenceCache:
    """Trivially correct set-associative LRU cache."""

    def __init__(self, sets, assoc):
        self.sets = [OrderedDict() for _ in range(sets)]
        self.assoc = assoc
        self.n_sets = sets

    def access(self, line_addr):
        s = self.sets[line_addr % self.n_sets]
        if line_addr in s:
            s.move_to_end(line_addr)
            return True  # hit
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[line_addr] = True
        return False


addresses = st.lists(st.integers(min_value=0, max_value=31),
                     min_size=1, max_size=300)


class TestAgainstReference:
    @given(addresses)
    @settings(max_examples=60, deadline=None)
    def test_hit_miss_sequence_matches_lru_reference(self, seq):
        geom = CacheGeometry(SETS * ASSOC * LINE, LINE, ASSOC)
        dut = CacheArray(geom, "lru")
        ref = ReferenceCache(SETS, ASSOC)
        for la in seq:
            ref_hit = ref.access(la)
            frame = dut.lookup(la)
            dut_hit = frame >= 0
            if not dut_hit:
                victim = dut.choose_victim(la)
                dut.install(la, victim, 1)
            assert dut_hit == ref_hit, f"divergence at line {la}"

    @given(addresses)
    @settings(max_examples=60, deadline=None)
    def test_integrity_always_holds(self, seq):
        geom = CacheGeometry(SETS * ASSOC * LINE, LINE, ASSOC)
        dut = CacheArray(geom, "lru")
        for la in seq:
            if dut.lookup(la) < 0:
                dut.install(la, dut.choose_victim(la), 1)
        dut.check_integrity()

    @given(addresses)
    @settings(max_examples=60, deadline=None)
    def test_resident_count_bounded_by_capacity(self, seq):
        geom = CacheGeometry(SETS * ASSOC * LINE, LINE, ASSOC)
        dut = CacheArray(geom, "lru")
        for la in seq:
            if dut.lookup(la) < 0:
                dut.install(la, dut.choose_victim(la), 1)
        assert sum(1 for _ in dut.resident_lines()) <= geom.n_lines

    @given(addresses, st.sampled_from(["lru", "tree-plru", "random"]))
    @settings(max_examples=40, deadline=None)
    def test_any_policy_keeps_most_recent_line(self, seq, policy):
        """The line just accessed must always be resident."""
        geom = CacheGeometry(SETS * ASSOC * LINE, LINE, ASSOC)
        dut = CacheArray(geom, policy)
        for la in seq:
            if dut.lookup(la) < 0:
                victim = dut.choose_victim(la)
                dut.install(la, victim, 1)
            assert dut.probe(la) >= 0
