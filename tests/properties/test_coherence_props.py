"""Property-based coherence tests: random multi-core traffic keeps every
system invariant intact, for every leakage technique."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.states import E, M, OFF, S, is_valid
from tests.conftest import make_system, tiny_config

# (core, line, is_write) operations over a small shared space
ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 23),
        st.booleans(),
    ),
    min_size=1,
    max_size=250,
)

techniques = st.sampled_from(
    ["baseline", "protocol", "decay", "selective_decay"])


class TestCoherenceInvariants:
    @given(ops_strategy, techniques)
    @settings(max_examples=40, deadline=None)
    def test_invariants_after_random_traffic(self, ops, tech):
        sys = make_system(tiny_config(tech, decay_cycles=700))
        t = 0
        for cid, line, wr in ops:
            if tech in ("decay", "selective_decay"):
                sys.process_decay_until(t)
            sys.l2s[cid].access(line, t, wr)
            t += 60
        sys.check_invariants()

    @given(ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_single_writer_multiple_reader(self, ops):
        sys = make_system(tiny_config())
        t = 0
        for cid, line, wr in ops:
            sys.l2s[cid].access(line, t, wr)
            t += 60
        for line in {ln for _, ln, _ in ops}:
            holders = [
                (i, l2.array.state[l2.array.probe(line)])
                for i, l2 in enumerate(sys.l2s)
                if l2.array.probe(line) >= 0
                and is_valid(l2.array.state[l2.array.probe(line)])
            ]
            exclusive = [h for h in holders if h[1] in (M, E)]
            if exclusive:
                assert len(holders) == 1, f"line {line}: {holders}"

    @given(ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_last_writer_owns_line(self, ops):
        """After the last write to a line, that core's L2 holds it in M
        unless somebody read or wrote it afterwards."""
        sys = make_system(tiny_config())
        t = 0
        last_op = {}
        for cid, line, wr in ops:
            sys.l2s[cid].access(line, t, wr)
            last_op[line] = (cid, wr)
            t += 60
        for line, (cid, wr) in last_op.items():
            if not wr:
                continue
            frame = sys.l2s[cid].array.probe(line)
            # line may have been evicted by capacity; if resident -> M
            if frame >= 0:
                assert sys.l2s[cid].array.state[frame] == M

    @given(ops_strategy, techniques)
    @settings(max_examples=30, deadline=None)
    def test_occupancy_matches_powered_frames(self, ops, tech):
        sys = make_system(tiny_config(tech, decay_cycles=700))
        t = 0
        for cid, line, wr in ops:
            if tech in ("decay", "selective_decay"):
                sys.process_decay_until(t)
            sys.l2s[cid].access(line, t, wr)
            t += 60
        for l2 in sys.l2s:
            powered = sum(1 for s in l2.array.state if s != OFF)
            assert powered == l2.occupancy.on_lines

    @given(ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_baseline_never_gates(self, ops):
        sys = make_system(tiny_config("baseline"))
        t = 0
        for cid, line, wr in ops:
            sys.l2s[cid].access(line, t, wr)
            t += 60
        for l2 in sys.l2s:
            assert l2.occupancy.on_lines == l2.geom.n_lines
            assert l2.stats.gated_total == 0
