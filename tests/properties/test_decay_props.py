"""Property-based decay tests: timer bounds, occupancy monotonicity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counters import DecayTimer
from repro.core.occupancy import OccupancyTracker
from repro.sim.config import COUNTER_HIERARCHICAL, COUNTER_IDEAL
from tests.conftest import make_system, tiny_config


class TestTimerProperties:
    @given(st.integers(16, 10**7), st.integers(0, 10**9),
           st.integers(1, 4))
    @settings(max_examples=200, deadline=None)
    def test_hierarchical_deadline_bounds(self, decay, last, bits):
        t = DecayTimer(decay, COUNTER_HIERARCHICAL, bits=bits)
        dl = t.deadline(last)
        interval = dl - last
        lo, hi = t.interval_bounds()
        assert lo <= interval <= hi
        assert interval <= decay

    @given(st.integers(1, 10**7), st.integers(0, 10**9))
    @settings(max_examples=100, deadline=None)
    def test_ideal_deadline_exact(self, decay, last):
        assert DecayTimer(decay, COUNTER_IDEAL).deadline(last) == last + decay

    @given(st.integers(16, 10**6), st.lists(st.integers(0, 10**6),
                                            min_size=2, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_deadline_monotone_in_touch_time(self, decay, touches):
        t = DecayTimer(decay, COUNTER_HIERARCHICAL)
        touches.sort()
        deadlines = [t.deadline(x) for x in touches]
        assert all(a <= b for a, b in zip(deadlines, deadlines[1:]))


events_strategy = st.lists(
    st.tuples(st.integers(1, 50), st.booleans()), min_size=0, max_size=80)


class TestOccupancyProperties:
    @given(events_strategy)
    @settings(max_examples=100, deadline=None)
    def test_integral_bounded(self, deltas):
        n = 8
        tr = OccupancyTracker(n, start_powered=False)
        t = 0
        for dt, wake in deltas:
            t += dt
            if wake and tr.on_lines < n:
                tr.wake(t)
            elif not wake and tr.on_lines > 0:
                tr.gate(t)
        total = tr.finalize(t + 10)
        assert 0 <= total <= n * (t + 10)

    @given(events_strategy, st.integers(2, 30))
    @settings(max_examples=60, deadline=None)
    def test_bucket_sum_equals_integral(self, deltas, interval):
        n = 8
        tr = OccupancyTracker(n, start_powered=False,
                              sample_interval=interval)
        t = 0
        for dt, wake in deltas:
            t += dt
            if wake and tr.on_lines < n:
                tr.wake(t)
            elif not wake and tr.on_lines > 0:
                tr.gate(t)
        total = tr.finalize(t + 5)
        assert sum(tr.bucket_integrals()) == total


class TestDecayMonotonicity:
    """Longer decay time => more powered line-cycles (same traffic)."""

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 15),
                              st.booleans()),
                    min_size=5, max_size=120))
    @settings(max_examples=25, deadline=None)
    def test_occupancy_monotone_in_decay_time(self, ops):
        on_cycles = []
        for decay in (400, 1600, 6400):
            sys = make_system(tiny_config("decay", decay_cycles=decay))
            t = 0
            for cid, line, wr in ops:
                sys.process_decay_until(t)
                sys.l2s[cid].access(line, t, wr)
                t += 50
            end = t + 10_000
            sys.process_decay_until(end)
            sys.finalize(end)
            on_cycles.append(
                sum(l2.stats.on_line_cycles for l2 in sys.l2s))
        assert on_cycles[0] <= on_cycles[1] <= on_cycles[2]
